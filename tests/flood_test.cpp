// Resource-exhaustion tests: the bounded ingress queue in the simulated
// network, the flooding attack tools, the Aardvark-style replica defenses,
// and the flood campaign plumbing (hyperspace, outcome metrics, dedup,
// journal determinism).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "avd/pbft_executor.h"
#include "campaign/dedup.h"
#include "campaign/runner.h"
#include "faultinject/flood.h"
#include "pbft/deployment.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace avd {
namespace {

// --- Bounded ingress at the network layer ------------------------------------

class SinkNode final : public sim::Node {
 public:
  explicit SinkNode(util::NodeId id) : Node(id) {}
  void receive(util::NodeId from, const sim::MessagePtr&) override {
    received.push_back(from);
    receivedAt.push_back(now());
  }
  std::vector<util::NodeId> received;
  std::vector<sim::Time> receivedAt;

  using Node::send;
};

class SizedPayload final : public sim::Message {
 public:
  explicit SizedPayload(std::size_t bytes) : bytes_(bytes) {}
  std::uint32_t kind() const noexcept override { return 0xF00D; }
  std::size_t wireSize() const noexcept override { return bytes_; }

 private:
  std::size_t bytes_;
};

struct IngressHarness {
  explicit IngressHarness(sim::LinkModel model, std::size_t nodeCount = 4)
      : simulator(7), network(&simulator, model) {
    for (util::NodeId id = 0; id < nodeCount; ++id) {
      nodes.push_back(std::make_unique<SinkNode>(id));
      network.registerNode(nodes.back().get());
    }
  }

  sim::Simulator simulator;
  sim::Network network;
  std::vector<std::unique_ptr<SinkNode>> nodes;
};

TEST(BoundedIngress, ZeroedModelKeepsDirectDelivery) {
  IngressHarness h(sim::LinkModel{sim::msec(1), 0});
  ASSERT_FALSE(h.network.linkModel().ingressEnabled());
  for (int i = 0; i < 100; ++i) {
    h.nodes[0]->send(1, std::make_shared<SizedPayload>(64));
  }
  h.simulator.run();
  EXPECT_EQ(h.nodes[1]->received.size(), 100u);
  EXPECT_EQ(h.network.counters().droppedQueueOverflow, 0u);
  EXPECT_EQ(h.network.counters().peakIngressDepth, 0u);
}

TEST(BoundedIngress, SharedQueueCapacityOverflowDropsNewest) {
  sim::LinkModel model{sim::msec(1), 0};
  model.ingressCapacity = 4;
  model.ingressServiceTime = sim::msec(10);  // slower than the burst
  IngressHarness h(model);
  for (int i = 0; i < 10; ++i) {
    h.nodes[0]->send(1, std::make_shared<SizedPayload>(64));
  }
  h.simulator.run();
  EXPECT_EQ(h.nodes[1]->received.size(), 4u);
  EXPECT_EQ(h.network.counters().droppedQueueOverflow, 6u);
  EXPECT_EQ(h.network.counters().peakIngressDepth, 4u);
  EXPECT_EQ(h.network.ingressStats(1).drops, 6u);
  EXPECT_EQ(h.network.ingressStats(1).peakDepth, 4u);
  EXPECT_EQ(h.network.ingressStats(0).drops, 0u) << "per-receiver stats";
}

TEST(BoundedIngress, ByteBudgetAdmitsOneOversizeOnlyIntoAnEmptyLane) {
  sim::LinkModel model{sim::msec(1), 0};
  model.ingressByteBudget = 100;
  model.ingressServiceTime = sim::msec(10);
  IngressHarness h(model);
  // A message above the whole budget still enters an empty lane (otherwise
  // it could never be delivered at all)...
  h.nodes[0]->send(1, std::make_shared<SizedPayload>(500));
  // ...but everything behind it is over budget until it drains.
  h.nodes[0]->send(1, std::make_shared<SizedPayload>(64));
  h.nodes[0]->send(1, std::make_shared<SizedPayload>(64));
  h.simulator.run();
  EXPECT_EQ(h.nodes[1]->received.size(), 1u);
  EXPECT_EQ(h.network.counters().droppedQueueOverflow, 2u);
  EXPECT_EQ(h.network.counters().peakIngressBytes, 500u);
}

TEST(BoundedIngress, ServiceTimePacesDeliveries) {
  sim::LinkModel model{sim::msec(1), 0};
  model.ingressServiceTime = sim::msec(3);
  IngressHarness h(model);
  for (int i = 0; i < 3; ++i) {
    h.nodes[0]->send(1, std::make_shared<SizedPayload>(64));
  }
  h.simulator.run();
  ASSERT_EQ(h.nodes[1]->received.size(), 3u);
  // Arrive together at t=1ms, then one service completion every 3ms.
  EXPECT_EQ(h.nodes[1]->receivedAt[0], sim::msec(4));
  EXPECT_EQ(h.nodes[1]->receivedAt[1], sim::msec(7));
  EXPECT_EQ(h.nodes[1]->receivedAt[2], sim::msec(10));
}

TEST(BoundedIngress, FairLanesIsolateTheFlooder) {
  sim::LinkModel model{sim::msec(1), 0};
  model.ingressCapacity = 4;
  model.ingressServiceTime = sim::msec(5);
  model.fairIngress = true;
  IngressHarness h(model);
  // Node 0 floods, node 2 sends a polite trickle; with per-sender lanes the
  // flood can only exhaust its own lane.
  for (int i = 0; i < 50; ++i) {
    h.nodes[0]->send(1, std::make_shared<SizedPayload>(64));
  }
  for (int i = 0; i < 3; ++i) {
    h.nodes[2]->send(1, std::make_shared<SizedPayload>(64));
  }
  h.simulator.run();
  const auto& got = h.nodes[1]->received;
  EXPECT_EQ(std::count(got.begin(), got.end(), util::NodeId{2}), 3)
      << "every polite message survives the flood";
  EXPECT_EQ(std::count(got.begin(), got.end(), util::NodeId{0}), 4)
      << "the flooder keeps only its own lane's capacity";
  EXPECT_EQ(h.network.counters().droppedQueueOverflow, 46u);
}

TEST(BoundedIngress, PrioritySendersBypassTheQueue) {
  sim::LinkModel model{sim::msec(1), 0};
  model.ingressCapacity = 2;
  model.ingressServiceTime = sim::msec(10);
  model.ingressPriorityNodes = 1;  // sender 0 has its own NIC
  IngressHarness h(model);
  for (int i = 0; i < 10; ++i) {
    h.nodes[0]->send(1, std::make_shared<SizedPayload>(64));
    h.nodes[2]->send(1, std::make_shared<SizedPayload>(64));
  }
  h.simulator.run();
  const auto& got = h.nodes[1]->received;
  EXPECT_EQ(std::count(got.begin(), got.end(), util::NodeId{0}), 10)
      << "priority traffic is never queued or dropped";
  EXPECT_EQ(std::count(got.begin(), got.end(), util::NodeId{2}), 2);
  EXPECT_EQ(h.network.counters().droppedQueueOverflow, 8u);
}

TEST(BoundedIngress, SameSeedRunsProduceIdenticalDropCounters) {
  const auto run = [] {
    sim::LinkModel model{sim::msec(1), sim::usec(300)};
    model.ingressCapacity = 3;
    model.ingressServiceTime = sim::msec(2);
    IngressHarness h(model);
    for (int i = 0; i < 200; ++i) {
      h.nodes[i % 3]->send(3, std::make_shared<SizedPayload>(64));
    }
    h.simulator.run();
    return h.network.counters();
  };
  const sim::NetworkCounters a = run();
  const sim::NetworkCounters b = run();
  EXPECT_EQ(a.droppedQueueOverflow, b.droppedQueueOverflow);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.peakIngressDepth, b.peakIngressDepth);
  EXPECT_EQ(a.peakIngressBytes, b.peakIngressBytes);
  EXPECT_GT(a.droppedQueueOverflow, 0u);
}

// --- Flood tools against a PBFT deployment -----------------------------------

/// A deployment with a bounded receive path — the resource surface the
/// flood tools attack. Mirrors core::makeFloodExecutorOptions.
pbft::DeploymentConfig boundedConfig(bool defended, std::uint64_t seed = 17) {
  pbft::DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(400);
  config.pbft.viewChangeTimeout = sim::msec(400);
  config.correctClients = 10;
  config.clientRetx = sim::msec(100);
  config.warmup = sim::msec(300);
  config.measure = sim::msec(1500);
  config.seed = seed;
  config.link = sim::LinkModel{sim::usec(500), sim::usec(100)};
  config.link.ingressCapacity = 64;
  config.link.ingressByteBudget = 32 * 1024;
  config.link.ingressServiceTime = sim::usec(100);
  if (defended) fi::enableFloodDefenses(config.pbft);
  return config;
}

struct FloodRun {
  pbft::RunResult result;
  std::uint64_t floodSent = 0;
  std::uint64_t floodReplies = 0;
  std::uint64_t replaysSuppressed = 0;
  std::uint64_t oversizedRejected = 0;
  std::uint64_t replyCacheEvicted = 0;
  std::uint64_t syncBytesCapped = 0;
  std::size_t replyCacheBytes = 0;
};

FloodRun runFlood(const pbft::DeploymentConfig& config,
                  fi::FloodOptions options) {
  pbft::Deployment deployment(config);
  fi::FloodClient flood(config.pbft.replicaCount() + config.totalClients(),
                        config.pbft, &deployment.keychain(), options);
  deployment.network().registerNode(&flood);
  flood.install();

  FloodRun run;
  run.result = deployment.run();
  run.floodSent = flood.messagesSent();
  run.floodReplies = flood.repliesReceived();
  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    const pbft::ReplicaStats& stats = deployment.replica(r).stats();
    run.replaysSuppressed += stats.replaysSuppressed;
    run.oversizedRejected += stats.oversizedRejected;
    run.replyCacheEvicted += stats.replyCacheEvicted;
    run.syncBytesCapped += stats.syncBytesCapped;
    run.replyCacheBytes =
        std::max(run.replyCacheBytes, deployment.replica(r).replyCacheBytes());
  }
  return run;
}

fi::FloodOptions spamAt(std::uint32_t perSecond) {
  fi::FloodOptions options;
  options.kind = fi::FloodKind::kRequestSpam;
  options.interval = sim::sec(1) / perSecond;
  return options;
}

TEST(FloodAttack, RequestSpamStarvesTheUndefendedDeployment) {
  const pbft::DeploymentConfig config = boundedConfig(/*defended=*/false);
  const pbft::RunResult baseline = pbft::runScenario(config);
  ASSERT_GT(baseline.throughputRps, 500.0);

  const FloodRun flood = runFlood(config, spamAt(16000));
  EXPECT_LT(flood.result.throughputRps, 0.5 * baseline.throughputRps)
      << "the shared bounded queue lets the flood displace correct traffic";
  EXPECT_GT(flood.result.queueDrops, 1000u);
  EXPECT_GT(flood.result.peakQueueDepth, 0u);
  EXPECT_GT(flood.floodSent, 10000u);
  EXPECT_FALSE(flood.result.safetyViolated)
      << "resource exhaustion is a liveness attack, never a safety one";
}

TEST(FloodAttack, DefenseProfileRestoresServiceUnderTheSameSpam) {
  const pbft::DeploymentConfig defended = boundedConfig(/*defended=*/true);
  const pbft::RunResult baseline = pbft::runScenario(defended);
  ASSERT_GT(baseline.throughputRps, 500.0);

  const FloodRun flood = runFlood(defended, spamAt(16000));
  EXPECT_GT(flood.result.throughputRps, 0.8 * baseline.throughputRps)
      << "fair lanes + admission quotas confine the flood's damage";
  EXPECT_GT(flood.result.quotaDrops, 0u)
      << "the admission layer visibly sheds the flood";
  EXPECT_FALSE(flood.result.safetyViolated)
      << "no committed state may be lost under defense";
  EXPECT_LE(flood.result.maxView, 3u)
      << "at most a brief view transient while the quotas engage — not the "
         "sustained thrashing the undefended deployment suffers";
}

TEST(FloodAttack, SameSeedFloodRunsAreIdentical) {
  const pbft::DeploymentConfig config = boundedConfig(/*defended=*/false);
  const FloodRun a = runFlood(config, spamAt(8000));
  const FloodRun b = runFlood(config, spamAt(8000));
  EXPECT_EQ(a.result.throughputRps, b.result.throughputRps);
  EXPECT_EQ(a.result.correctCompleted, b.result.correctCompleted);
  EXPECT_EQ(a.result.queueDrops, b.result.queueDrops);
  EXPECT_EQ(a.result.network.delivered, b.result.network.delivered);
  EXPECT_EQ(a.result.eventsExecuted, b.result.eventsExecuted);
  EXPECT_EQ(a.floodSent, b.floodSent);
}

TEST(FloodAttack, OversizedPayloadsAreRejectedBeforeProtocolWork) {
  pbft::DeploymentConfig config = boundedConfig(/*defended=*/true);
  fi::FloodOptions options;
  options.kind = fi::FloodKind::kOversizedPayload;
  options.interval = sim::sec(1) / 2000;
  options.payloadBytes = 4096;  // above Config::maxRequestBytes
  const FloodRun flood = runFlood(config, options);
  EXPECT_GT(flood.oversizedRejected, 0u);
  EXPECT_GT(flood.result.throughputRps, 100.0)
      << "correct clients keep making progress";
}

TEST(FloodAttack, ReplayStormIsSuppressedAndReplyCacheStaysBounded) {
  // Satellite: reply-cache eviction at the stable checkpoint bounds cache
  // growth under a replay storm, without ever weakening at-most-once.
  pbft::DeploymentConfig config = boundedConfig(/*defended=*/true);
  fi::FloodOptions options;
  options.kind = fi::FloodKind::kReplayStorm;
  options.interval = sim::sec(1) / 8000;
  options.payloadBytes = 512;
  const FloodRun flood = runFlood(config, options);
  EXPECT_GT(flood.replaysSuppressed, 100u)
      << "at most one cached-reply resend per admission window";
  EXPECT_GT(flood.replyCacheEvicted, 0u)
      << "replies older than the stable checkpoint's snapshot are evicted";
  EXPECT_LT(flood.replyCacheBytes, std::size_t{64} * 1024)
      << "the cache holds at most one recent reply per client";
  EXPECT_FALSE(flood.result.safetyViolated);
}

TEST(FloodAttack, ReplayStormAmplifiesAgainstTheUndefendedCache) {
  // The observable the storm exploits: each replayed request earns a resent
  // reply from the cache, so bandwidth out scales with replay rate.
  pbft::DeploymentConfig config = boundedConfig(/*defended=*/false);
  fi::FloodOptions options;
  options.kind = fi::FloodKind::kReplayStorm;
  options.interval = sim::sec(1) / 4000;
  const FloodRun flood = runFlood(config, options);
  EXPECT_GT(flood.floodReplies, 100u)
      << "no replay suppression: the cache answers the storm";
}

TEST(FloodAttack, SyncByteBudgetCapsStatusReplayAmplification) {
  // Satellite: the per-peer SyncSeq/retransmission budget is on *bytes*, so
  // a replayed lagging STATUS cannot elicit unbounded state-transfer push.
  pbft::DeploymentConfig uncapped = boundedConfig(/*defended=*/false);
  uncapped.pbft.syncBytesPerPeer = 0;
  pbft::DeploymentConfig capped = boundedConfig(/*defended=*/false);
  capped.pbft.syncBytesPerPeer = 4 * 1024;

  fi::FloodOptions options;
  options.kind = fi::FloodKind::kStatusAmplify;
  options.interval = sim::msec(2);
  options.target = 3;

  const FloodRun a = runFlood(uncapped, options);
  const FloodRun b = runFlood(capped, options);
  EXPECT_GT(a.floodSent, 100u);
  EXPECT_GT(b.syncBytesCapped, 0u) << "the cap visibly engages";
  EXPECT_LT(b.result.network.bytesSent, a.result.network.bytesSent)
      << "capping the per-peer budget shrinks the amplification";
}

// --- Executor, hyperspace and campaign plumbing ------------------------------

/// Point in makeFloodHyperspace() order: {flood_kind, flood_rate,
/// flood_bytes, flood_target, correct_clients}.
core::Point spamPoint() { return {1, 3, 0, 0, 1}; }  // spam @16k, broadcast

TEST(FloodHyperspace, ShapeMatchesTheDocumentedDimensions) {
  const core::Hyperspace space = core::makeFloodHyperspace();
  ASSERT_EQ(space.dimensionCount(), 5u);
  EXPECT_EQ(space.dimension(0).name(), "flood_kind");
  EXPECT_EQ(space.dimension(1).name(), "flood_rate");
  EXPECT_EQ(space.dimension(2).name(), "flood_bytes");
  EXPECT_EQ(space.dimension(3).name(), "flood_target");
  EXPECT_EQ(space.dimension(4).name(), "correct_clients");
  EXPECT_EQ(space.dimension(0).value(0), 0) << "index 0 = flood off";
  EXPECT_EQ(space.dimension(1).value(3), 16000);
}

TEST(FloodExecutor, UndefendedSpamScoresHighDefendedScoresLow) {
  // The acceptance ablation: the same scenario point must read >= 0.5
  // impact on the vulnerable deployment and <= 0.2 with the defense
  // profile, with the committed-state oracle clean both ways.
  core::PbftAttackExecutor undefended(core::makeFloodHyperspace(),
                                      core::makeFloodExecutorOptions(false));
  const core::Outcome raw = undefended.execute(spamPoint());
  EXPECT_GE(raw.impact, 0.5);
  EXPECT_GT(raw.queueDrops, 0u);
  EXPECT_FALSE(raw.safetyViolated);

  core::PbftAttackExecutor defended(core::makeFloodHyperspace(),
                                    core::makeFloodExecutorOptions(true));
  const core::Outcome guarded = defended.execute(spamPoint());
  EXPECT_LE(guarded.impact, 0.2);
  EXPECT_GT(guarded.quotaDrops, 0u);
  EXPECT_FALSE(guarded.safetyViolated);
}

TEST(FloodExecutor, FloodOffPointIsNearBaseline) {
  core::PbftAttackExecutor executor(core::makeFloodHyperspace(),
                                    core::makeFloodExecutorOptions(false));
  const core::Outcome outcome = executor.execute({0, 0, 0, 0, 1});
  EXPECT_LT(outcome.impact, 0.2);
}

TEST(FloodExecutor, OutcomesAreDeterministicAcrossExecutors) {
  const auto once = [] {
    core::PbftAttackExecutor executor(core::makeFloodHyperspace(),
                                      core::makeFloodExecutorOptions(false));
    return executor.execute(spamPoint());
  };
  const core::Outcome a = once();
  const core::Outcome b = once();
  EXPECT_EQ(a.impact, b.impact);
  EXPECT_EQ(a.throughputRps, b.throughputRps);
  EXPECT_EQ(a.queueDrops, b.queueDrops);
  EXPECT_EQ(a.quotaDrops, b.quotaDrops);
  EXPECT_EQ(a.viewChanges, b.viewChanges);
}

TEST(FloodDedup, ResourceBandSplitsFloodClassesFromTimingClasses) {
  core::Hyperspace space = core::makeFloodHyperspace();
  core::TestRecord timing;
  timing.point = {1, 3, 0, 0, 1};
  timing.outcome.impact = 0.8;
  core::TestRecord flood = timing;
  flood.outcome.queueDrops = 50000;

  const campaign::VulnSignature a = campaign::signatureOf(space, timing);
  const campaign::VulnSignature b = campaign::signatureOf(space, flood);
  EXPECT_NE(a, b) << "same impact, different resource damage";
  EXPECT_EQ(a.resourceBand, 0);
  EXPECT_EQ(b.resourceBand, 3);
  const std::string label = campaign::signatureLabel(space, b);
  EXPECT_NE(label.find("resource drops >10k"), std::string::npos) << label;
  EXPECT_EQ(campaign::signatureLabel(space, a).find("resource drops"),
            std::string::npos)
      << "band 0 stays silent, like the restart band";
}

std::string floodScratchDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "avd_flood_test" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string readAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FloodCampaign, SameSeedCampaignsWriteByteIdenticalJournals) {
  const auto runCampaign = [](const std::string& dir) {
    campaign::CampaignOptions options;
    options.seed = 99;
    options.totalTests = 8;
    options.outDir = dir;
    options.system = "pbft-flood";
    options.checkpointEvery = 4;
    campaign::CampaignRunner runner(
        [] {
          core::PbftExecutorOptions executorOptions =
              core::makeFloodExecutorOptions(false);
          executorOptions.measure = sim::msec(1000);
          return std::make_unique<core::PbftAttackExecutor>(
              core::makeFloodHyperspace(), executorOptions);
        },
        options);
    return runner.run();
  };

  const std::string dirA = floodScratchDir("journal_a");
  const std::string dirB = floodScratchDir("journal_b");
  const campaign::CampaignResult a = runCampaign(dirA);
  const campaign::CampaignResult b = runCampaign(dirB);

  const std::string journalA = readAll(dirA + "/journal.jsonl");
  ASSERT_FALSE(journalA.empty());
  EXPECT_EQ(journalA, readAll(dirB + "/journal.jsonl"))
      << "same-seed flood campaigns must be byte-identical";

  std::uint64_t dropsA = 0;
  std::uint64_t dropsB = 0;
  for (const core::TestRecord& record : a.history) {
    dropsA += record.outcome.queueDrops;
  }
  for (const core::TestRecord& record : b.history) {
    dropsB += record.outcome.queueDrops;
  }
  EXPECT_EQ(dropsA, dropsB) << "identical queue-drop counters";
  EXPECT_EQ(a.history.size(), 8u);
}

}  // namespace
}  // namespace avd
