// Fleet tests: framing, wire protocol, shard merge edge cases, and the
// coordinator's chaos guarantees — worker kill -9 (before and after the
// shard append), coordinator kill + resume, wedge containment, graceful
// drain, and the remote TCP path.
//
// Workers run as threads over socketpairs (Launcher with pid = -1), which
// keeps the tests hermetic and lets crash hooks share state with the test
// body; the avd_cli binary exercises the real fork+exec path and CI's
// release leg kills real processes.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "avd/controller.h"
#include "avd/plugin.h"
#include "campaign/fleet/coordinator.h"
#include "campaign/fleet/protocol.h"
#include "campaign/fleet/shard.h"
#include "campaign/fleet/worker.h"
#include "campaign/journal.h"
#include "campaign/runner.h"
#include "common/framing.h"
#include "common/proc.h"

namespace avd::campaign::fleet {
namespace {

// --- helpers -----------------------------------------------------------------

/// Same synthetic ridge landscape as campaign_test.cpp: deterministic,
/// instant, structured enough for the controller to climb.
class RidgeExecutor final : public core::ScenarioExecutor {
 public:
  RidgeExecutor() {
    space_.add(core::Dimension::range("x", 0, 99));
    space_.add(core::Dimension::range("y", 0, 99));
  }

  core::Outcome execute(const core::Point& point) override {
    const double dx = std::abs(static_cast<double>(point[0]) - 70.0);
    const double dy = std::abs(static_cast<double>(point[1]) - 30.0);
    core::Outcome outcome;
    const double ridge = std::max(0.0, 1.0 - dx / 10.0);
    const double along = 1.0 - 0.6 * dy / 99.0;
    outcome.impact = ridge * along;
    outcome.throughputRps = 1000.0 * (1.0 - outcome.impact);
    return outcome;
  }

  const core::Hyperspace& space() const noexcept override { return space_; }

 private:
  core::Hyperspace space_;
};

ExecutorFactory ridgeFactory() {
  return [] { return std::make_unique<RidgeExecutor>(); };
}

WorkerExecutorFactory ridgeWorkerFactory() {
  return [](const std::string&, std::uint64_t) {
    return std::make_unique<RidgeExecutor>();
  };
}

std::string scratchDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "avd_fleet_test" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string readAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeAll(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  ASSERT_TRUE(out.good());
}

/// Byte offset one past the `n`-th newline, plus `extra` bytes into the
/// next line (a kill -9 landing mid-append).
std::size_t cutOffset(const std::string& journal, std::size_t lines,
                      std::size_t extra) {
  std::size_t at = 0;
  for (std::size_t i = 0; i < lines; ++i) {
    at = journal.find('\n', at);
    EXPECT_NE(at, std::string::npos);
    ++at;
  }
  return std::min(journal.size(), at + extra);
}

/// Runs workers as threads over socketpairs. pid = -1 tells the
/// coordinator failure detection to rely on EOF and heartbeats; its "kill"
/// degrades to closing the coordinator-side fd, after which the worker
/// thread sees EOF (or a send failure) and returns, so join() terminates.
class ThreadFleet {
 public:
  ~ThreadFleet() {
    for (std::thread& thread : threads_) thread.join();
  }

  Launcher launcher(WorkerExecutorFactory factory, WorkerHooks hooks = {}) {
    return [this, factory, hooks](std::size_t) {
      return launchOne(factory, hooks);
    };
  }

  std::optional<util::SpawnedProcess> launchOne(WorkerExecutorFactory factory,
                                                WorkerHooks hooks = {}) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return std::nullopt;
    const int workerFd = fds[1];
    const std::lock_guard<std::mutex> hold(mutex_);
    threads_.emplace_back([workerFd, factory, hooks] {
      (void)runWorker(workerFd, factory, hooks);
    });
    return util::SpawnedProcess{-1, fds[0]};
  }

 private:
  std::mutex mutex_;
  std::vector<std::thread> threads_;
};

FleetOptions ridgeFleetOptions(std::uint64_t seed, std::size_t tests,
                               std::size_t spawn, const std::string& dir) {
  FleetOptions options;
  options.campaign.seed = seed;
  options.campaign.totalTests = tests;
  options.campaign.outDir = dir;
  options.campaign.system = "ridge";
  options.campaign.checkpointEvery = 8;
  options.spawn = spawn;
  options.heartbeatMs = 50;
  return options;
}

// --- framing -----------------------------------------------------------------

TEST(FleetFraming, FramesRoundTripOverASocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "{\"event\":\"hello\",\"version\":1}";
  ASSERT_TRUE(util::writeFrame(fds[0], payload));
  ASSERT_TRUE(util::writeFrame(fds[0], ""));  // empty frames are legal
  const auto first = util::readFrame(fds[1]);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, payload);
  const auto second = util::readFrame(fds[1]);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->empty());
  ::close(fds[0]);
  EXPECT_FALSE(util::readFrame(fds[1]).has_value()) << "EOF is nullopt";
  ::close(fds[1]);
}

TEST(FleetFraming, FrameReaderReassemblesPartialDelivery) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload(300, 'x');
  std::string wire;
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(static_cast<char>(300 / 256));
  wire.push_back(static_cast<char>(300 % 256));
  wire += payload;

  util::FrameReader reader;
  // Deliver the frame in three fragments; no frame may surface early.
  for (const auto& range : {wire.substr(0, 2), wire.substr(2, 150)}) {
    ASSERT_EQ(::send(fds[0], range.data(), range.size(), 0),
              static_cast<ssize_t>(range.size()));
    ASSERT_TRUE(reader.pump(fds[1]));
    EXPECT_FALSE(reader.next().has_value());
  }
  const std::string rest = wire.substr(152);
  ASSERT_EQ(::send(fds[0], rest.data(), rest.size(), 0),
            static_cast<ssize_t>(rest.size()));
  ASSERT_TRUE(reader.pump(fds[1]));
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, payload);
  EXPECT_FALSE(reader.corrupt());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FleetFraming, OversizedDeclaredLengthMarksTheStreamCorrupt) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const char huge[4] = {0x7f, 0x00, 0x00, 0x00};  // ~2 GiB declared
  ASSERT_EQ(::send(fds[0], huge, 4, 0), 4);
  util::FrameReader reader;
  ASSERT_TRUE(reader.pump(fds[1]));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupt())
      << "a byzantine peer must not make the coordinator allocate 2 GiB";
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- fault injection: EINTR storms and short transfers -----------------------

// No-op SIGUSR1 handler installed WITHOUT SA_RESTART, so every in-flight
// read/write/send/recv in a thread that receives the signal returns
// EINTR. The framing and shard-append loops must absorb that.
void onInterrupt(int) {}

void installInterruptingHandler() {
  struct sigaction sa {};
  sa.sa_handler = onInterrupt;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(sigaction(SIGUSR1, &sa, nullptr), 0);
}

void unblockUsr1InThisThread() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGUSR1);
  pthread_sigmask(SIG_UNBLOCK, &set, nullptr);
}

/// Blocks SIGUSR1 on the constructing (main) thread, then rains
/// process-directed SIGUSR1 until destruction. Worker threads opt in with
/// unblockUsr1InThisThread(), which steers delivery — and the EINTRs — at
/// them. Process-directed kill() is used instead of pthread_kill so there
/// is no race against a worker thread exiting mid-storm.
class SignalStorm {
 public:
  SignalStorm() {
    installInterruptingHandler();
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGUSR1);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    storm_ = std::thread([this] {
      while (!stop_.load()) {
        ::kill(::getpid(), SIGUSR1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  ~SignalStorm() {
    stop_.store(true);
    storm_.join();
    // The handler stays installed (it is a no-op); unblocking here lets a
    // still-pending signal drain into it harmlessly.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGUSR1);
    pthread_sigmask(SIG_UNBLOCK, &set, nullptr);
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread storm_;
};

TEST(FleetFaultInjection, LargeFrameSurvivesEintrStormAndShortTransfers) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Shrink both socket buffers so the half-megabyte frame needs many
  // partial send()/recv() rounds, each of which the storm can interrupt.
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof tiny), 0);
  ASSERT_EQ(::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny), 0);

  std::string payload(512 * 1024, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i * 131) % 26);
  }

  SignalStorm storm;
  bool wrote = false;
  std::optional<std::string> frame;
  std::thread writer([&] {
    unblockUsr1InThisThread();
    wrote = util::writeFrame(fds[0], payload);
  });
  std::thread reader([&] {
    unblockUsr1InThisThread();
    frame = util::readFrame(fds[1]);
  });
  writer.join();
  reader.join();
  ASSERT_TRUE(wrote);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, payload)
      << "byte-identical reassembly through interrupted partial transfers";
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FleetFaultInjection, FrameStreamUnderStormReassemblesEveryFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  constexpr std::size_t kFrames = 300;
  std::vector<std::string> sent(kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) {
    sent[i].assign(1 + (i * 37) % 1500, static_cast<char>('A' + i % 26));
  }

  SignalStorm storm;
  std::thread writer([&] {
    unblockUsr1InThisThread();
    for (const std::string& p : sent) {
      if (!util::writeFrame(fds[0], p)) return;
    }
    ::close(fds[0]);  // EOF ends the reader's pump loop
  });
  std::vector<std::string> got;
  std::thread reader([&] {
    unblockUsr1InThisThread();
    util::FrameReader r;
    for (;;) {
      const bool alive = r.pump(fds[1]);
      while (auto f = r.next()) got.push_back(std::move(*f));
      if (!alive) break;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    EXPECT_FALSE(r.corrupt());
  });
  writer.join();
  reader.join();
  ASSERT_EQ(got.size(), kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(got[i], sent[i]) << "frame " << i;
  }
  ::close(fds[1]);
}

TEST(FleetFaultInjection, ShardAppendsUnderStormMergeByteIdentically) {
  const std::string dir = scratchDir("eintr_shard");
  SignalStorm storm;
  std::string expected;
  std::atomic<bool> ok{true};
  std::thread workerThread([&] {
    unblockUsr1InThisThread();
    JournalWriter shard;
    if (!shard.openFresh(shardPath(dir, 0, 0))) {
      ok = false;
      return;
    }
    for (std::uint64_t test = 1; test <= 512; ++test) {
      DoneEvent done;
      done.test = test;
      done.outcome.impact = 0.001 * static_cast<double>(test);
      const std::string line = encodeDone(done);
      if (!shard.append(line) || (test % 64 == 0 && !shard.sync())) {
        ok = false;
        return;
      }
      expected += line + "\n";
    }
    if (!shard.close()) ok = false;
  });
  workerThread.join();
  ASSERT_TRUE(ok.load());
  EXPECT_EQ(readAll(shardPath(dir, 0, 0)), expected)
      << "every appended line reached the file byte-identically";
  const MergedShards merged = mergeShards(dir);
  EXPECT_EQ(merged.outcomes.size(), 512u);
  EXPECT_EQ(merged.tornShards, 0u);
  EXPECT_EQ(merged.corruptShards, 0u);
}

// --- protocol ----------------------------------------------------------------

TEST(FleetProtocol, ControlMessagesRoundTrip) {
  const std::string hello = encodeHello(Hello{kProtocolVersion});
  EXPECT_EQ(kindOf(hello), MessageKind::kHello);
  const auto helloBack = decodeHello(hello);
  ASSERT_TRUE(helloBack.has_value());
  EXPECT_EQ(helloBack->version, kProtocolVersion);

  Welcome welcome;
  welcome.slot = 3;
  welcome.incarnation = 7;
  welcome.system = "pbft-flood";
  welcome.seed = 0xdeadbeefULL;
  welcome.outDir = "/tmp/with \"quotes\" and\nnewline";
  welcome.heartbeatMs = 125;
  const std::string welcomeWire = encodeWelcome(welcome);
  EXPECT_EQ(kindOf(welcomeWire), MessageKind::kWelcome);
  const auto welcomeBack = decodeWelcome(welcomeWire);
  ASSERT_TRUE(welcomeBack.has_value());
  EXPECT_EQ(welcomeBack->slot, 3u);
  EXPECT_EQ(welcomeBack->incarnation, 7u);
  EXPECT_EQ(welcomeBack->system, welcome.system);
  EXPECT_EQ(welcomeBack->seed, welcome.seed);
  EXPECT_EQ(welcomeBack->outDir, welcome.outDir);
  EXPECT_EQ(welcomeBack->heartbeatMs, 125u);

  Assign assign;
  assign.test = 42;
  assign.point = {0, 19, 3};
  const std::string assignWire = encodeAssign(assign);
  EXPECT_EQ(kindOf(assignWire), MessageKind::kAssign);
  const auto assignBack = decodeAssign(assignWire);
  ASSERT_TRUE(assignBack.has_value());
  EXPECT_EQ(assignBack->test, 42u);
  EXPECT_EQ(assignBack->point, assign.point);

  const std::string beat = encodeHeartbeat(Heartbeat{9, 1234});
  EXPECT_EQ(kindOf(beat), MessageKind::kHeartbeat);
  const auto beatBack = decodeHeartbeat(beat);
  ASSERT_TRUE(beatBack.has_value());
  EXPECT_EQ(beatBack->busyTest, 9u);
  EXPECT_EQ(beatBack->busyMs, 1234u);

  EXPECT_EQ(kindOf(encodeShutdown()), MessageKind::kShutdown);
}

TEST(FleetProtocol, OutcomeFramesAreJournalDoneLines) {
  DoneEvent done;
  done.test = 5;
  done.outcome.impact = 0.625;
  const std::string wire = encodeDone(done);
  EXPECT_EQ(kindOf(wire), MessageKind::kOutcome);
  const auto decoded = decodeLine(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, JournalEvent::Kind::kDone);
  EXPECT_EQ(decoded->done.test, 5u);
}

TEST(FleetProtocol, GarbageIsUnknown) {
  EXPECT_EQ(kindOf(""), MessageKind::kUnknown);
  EXPECT_EQ(kindOf("not json"), MessageKind::kUnknown);
  EXPECT_EQ(kindOf("{\"event\":\"mystery\"}"), MessageKind::kUnknown);
  EXPECT_FALSE(decodeAssign("{\"event\":\"assign\"}").has_value())
      << "assign without test/point is a protocol violation, not a default";
}

// --- shard merge -------------------------------------------------------------

std::string doneLine(std::uint64_t test, double impact) {
  DoneEvent done;
  done.test = test;
  done.outcome.impact = impact;
  return encodeDone(done) + "\n";
}

TEST(FleetShards, MergeIsFirstWinsAcrossFilesAndCountsDuplicates) {
  const std::string dir = scratchDir("merge");
  writeAll(shardPath(dir, 0, 0), doneLine(1, 0.25) + doneLine(3, 0.5));
  writeAll(shardPath(dir, 1, 0), doneLine(2, 0.75) + doneLine(3, 0.5));
  writeAll(dir + "/journal.jsonl", "unrelated\n");  // not a shard; ignored

  const MergedShards merged = mergeShards(dir);
  EXPECT_EQ(merged.shardFiles, 2u);
  EXPECT_EQ(merged.outcomes.size(), 3u);
  EXPECT_EQ(merged.duplicates, 1u)
      << "test 3 completed on both workers (reassignment) — folded once";
  EXPECT_EQ(merged.tornShards, 0u);
  EXPECT_EQ(merged.corruptShards, 0u);
  EXPECT_EQ(merged.outcomes.at(2).outcome.impact, 0.75);
  EXPECT_EQ(merged.nextIncarnation.at(0), 1u);
  EXPECT_EQ(merged.nextIncarnation.at(1), 1u);
}

TEST(FleetShards, TornTailShardLosesOnlyTheTornLine) {
  const std::string dir = scratchDir("torn");
  writeAll(shardPath(dir, 0, 0),
           doneLine(1, 0.25) + "{\"event\":\"done\",\"te");  // kill -9 mid-append
  const MergedShards merged = mergeShards(dir);
  EXPECT_EQ(merged.shardFiles, 1u);
  EXPECT_EQ(merged.tornShards, 1u);
  EXPECT_EQ(merged.outcomes.size(), 1u);
  EXPECT_TRUE(merged.outcomes.count(1));
}

TEST(FleetShards, CorruptShardIsSkippedWhole) {
  const std::string dir = scratchDir("corrupt");
  writeAll(shardPath(dir, 0, 0), "garbage\n" + doneLine(1, 0.25));
  writeAll(shardPath(dir, 1, 0), doneLine(2, 0.5));
  const MergedShards merged = mergeShards(dir);
  EXPECT_EQ(merged.corruptShards, 1u);
  EXPECT_EQ(merged.outcomes.size(), 1u) << "only the healthy shard merges";
  EXPECT_TRUE(merged.outcomes.count(2));
}

TEST(FleetShards, MissingDirectoryAndMissingShardsMergeEmpty) {
  const MergedShards merged = mergeShards("/does/not/exist");
  EXPECT_EQ(merged.shardFiles, 0u);
  EXPECT_TRUE(merged.outcomes.empty());
}

TEST(FleetShards, IncarnationCountersSurviveGapsAndRemoveShardsClears) {
  const std::string dir = scratchDir("incarnation");
  writeAll(shardPath(dir, 0, 0), doneLine(1, 0.25));
  writeAll(shardPath(dir, 0, 4), doneLine(2, 0.5));  // incarnations 1-3 died
  writeAll(dir + "/keepme.txt", "not a shard\n");
  EXPECT_EQ(mergeShards(dir).nextIncarnation.at(0), 5u);

  removeShards(dir);
  EXPECT_TRUE(mergeShards(dir).outcomes.empty());
  EXPECT_TRUE(std::filesystem::exists(dir + "/keepme.txt"))
      << "removeShards must only touch shard files";
}

// --- end-to-end over thread workers ------------------------------------------

TEST(FleetEndToEnd, CampaignCompletesAndJournalIsAPureFunctionOfTheSeed) {
  const std::string dirA = scratchDir("e2e_a");
  const std::string dirB = scratchDir("e2e_b");
  for (const std::string& dir : {dirA, dirB}) {
    ThreadFleet fleet;
    FleetOptions options = ridgeFleetOptions(11, 40, 2, dir);
    options.launcher = fleet.launcher(ridgeWorkerFactory());
    FleetCoordinator coordinator(std::move(options), ridgeFactory());
    const CampaignResult result = coordinator.run();
    EXPECT_EQ(result.executed, 40u);
    EXPECT_EQ(result.history.size(), 40u);
    EXPECT_FALSE(result.aborted);
    EXPECT_EQ(result.workerCrashes, 0u);
    EXPECT_GT(result.maxImpact, 0.0);
  }
  const std::string journalA = readAll(journalPath(dirA));
  EXPECT_FALSE(journalA.empty());
  EXPECT_EQ(journalA, readAll(journalPath(dirB)))
      << "fleet journal bytes must be independent of worker timing";
}

TEST(FleetEndToEnd, InMemoryFleetNeedsNoOutDir) {
  ThreadFleet fleet;
  FleetOptions options = ridgeFleetOptions(11, 24, 2, "");
  options.launcher = fleet.launcher(ridgeWorkerFactory());
  FleetCoordinator coordinator(std::move(options), ridgeFactory());
  const CampaignResult result = coordinator.run();
  EXPECT_EQ(result.executed, 24u);
  EXPECT_FALSE(result.aborted);
}

/// Shared chaos scaffold: run a reference fleet uninterrupted, then a
/// second fleet where `hooks` murders workers at chosen moments, and
/// require identical journal bytes plus full completion.
void crashRoundTrip(const WorkerHooks& hooks, const std::string& tag,
                    std::size_t expectMinCrashes) {
  const std::string full = scratchDir("crash_full_" + tag);
  {
    ThreadFleet fleet;
    FleetOptions options = ridgeFleetOptions(23, 48, 2, full);
    options.launcher = fleet.launcher(ridgeWorkerFactory());
    FleetCoordinator coordinator(std::move(options), ridgeFactory());
    coordinator.run();
  }

  const std::string dir = scratchDir("crash_" + tag);
  ThreadFleet fleet;
  FleetOptions options = ridgeFleetOptions(23, 48, 2, dir);
  options.heartbeatMissFactor = 6;  // fail fast: threads die silently
  options.launcher = fleet.launcher(ridgeWorkerFactory(), hooks);
  FleetCoordinator coordinator(std::move(options), ridgeFactory());
  const CampaignResult result = coordinator.run();

  EXPECT_EQ(result.executed, 48u);
  EXPECT_FALSE(result.aborted);
  EXPECT_GE(result.workerCrashes, expectMinCrashes);
  EXPECT_GE(result.reassigned, 1u)
      << "the dead worker's in-flight scenarios ran elsewhere";
  // No respawn assertion: with an instant executor the surviving worker
  // often finishes the whole budget before the respawn backoff expires.
  EXPECT_EQ(readAll(journalPath(dir)), readAll(journalPath(full)))
      << "a worker crash must not change the journal bytes";
}

TEST(FleetChaos, WorkerDeathBeforeShardWriteIsReassignedByteIdentically) {
  // The outcome is lost entirely: not on disk, never framed. The scenario
  // must be re-executed elsewhere.
  auto crashed = std::make_shared<std::atomic<bool>>(false);
  WorkerHooks hooks;
  hooks.crashBeforeShardWrite = [crashed](std::uint64_t test) {
    return test == 5 && !crashed->exchange(true);
  };
  crashRoundTrip(hooks, "before", 1);
}

TEST(FleetChaos, WorkerDeathAfterShardWriteIsReassignedByteIdentically) {
  // The outcome reached the shard but not the coordinator — the duplicate
  // from re-execution is byte-identical, so the shard merge stays
  // idempotent (FleetShards.MergeIsFirstWins covers the fold side).
  auto crashed = std::make_shared<std::atomic<bool>>(false);
  WorkerHooks hooks;
  hooks.crashAfterShardWrite = [crashed](std::uint64_t test) {
    return test == 5 && !crashed->exchange(true);
  };
  crashRoundTrip(hooks, "after", 1);
}

TEST(FleetChaos, RepeatedCrashesExhaustTheRespawnBudgetAndAbort) {
  // Every incarnation dies on its first completed scenario; with a tiny
  // budget the coordinator must abort with partial results instead of
  // spinning forever.
  const std::string dir = scratchDir("budget");
  ThreadFleet fleet;
  FleetOptions options = ridgeFleetOptions(23, 48, 1, dir);
  options.heartbeatMissFactor = 6;
  options.maxWorkerRespawns = 2;
  options.respawnBackoffBaseMs = 10;
  WorkerHooks hooks;
  hooks.crashBeforeShardWrite = [](std::uint64_t) { return true; };
  options.launcher = fleet.launcher(ridgeWorkerFactory(), hooks);
  FleetCoordinator coordinator(std::move(options), ridgeFactory());
  const CampaignResult result = coordinator.run();
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.respawns, 2u);
  EXPECT_GE(result.workerCrashes, 3u) << "initial launch + two respawns";
  EXPECT_LT(result.executed, 48u);
}

// --- coordinator kill + resume -----------------------------------------------

/// Counts executions so resume tests can prove shard-recovered outcomes are
/// folded, not re-executed.
class CountingRidgeExecutor final : public core::ScenarioExecutor {
 public:
  explicit CountingRidgeExecutor(std::shared_ptr<std::atomic<std::size_t>> n)
      : executions_(std::move(n)) {}
  core::Outcome execute(const core::Point& point) override {
    executions_->fetch_add(1);
    return inner_.execute(point);
  }
  const core::Hyperspace& space() const noexcept override {
    return inner_.space();
  }

 private:
  RidgeExecutor inner_;
  std::shared_ptr<std::atomic<std::size_t>> executions_;
};

TEST(FleetResume, CoordinatorKillResumesByteIdenticallyFromShards) {
  // Reference: uninterrupted run.
  const std::string full = scratchDir("resume_full");
  {
    ThreadFleet fleet;
    FleetOptions options = ridgeFleetOptions(31, 48, 2, full);
    options.launcher = fleet.launcher(ridgeWorkerFactory());
    FleetCoordinator coordinator(std::move(options), ridgeFactory());
    coordinator.run();
  }

  // "Kill" a second identical run by truncating its journal mid-line while
  // keeping its shards — exactly the on-disk state a kill -9 of the
  // coordinator leaves (the shards always hold at least every folded
  // outcome, because workers append before framing).
  const std::string dir = scratchDir("resume_cut");
  {
    ThreadFleet fleet;
    FleetOptions options = ridgeFleetOptions(31, 48, 2, dir);
    options.launcher = fleet.launcher(ridgeWorkerFactory());
    FleetCoordinator coordinator(std::move(options), ridgeFactory());
    coordinator.run();
  }
  const std::string journal = readAll(journalPath(dir));
  writeAll(journalPath(dir), journal.substr(0, cutOffset(journal, 25, 17)));

  auto executions = std::make_shared<std::atomic<std::size_t>>(0);
  const WorkerExecutorFactory counting =
      [executions](const std::string&, std::uint64_t) {
        return std::make_unique<CountingRidgeExecutor>(executions);
      };
  ThreadFleet fleet;
  FleetOptions options;
  options.campaign.outDir = dir;
  options.launcher = fleet.launcher(counting);
  FleetCoordinator coordinator(std::move(options), ridgeFactory());
  const CampaignResult resumed = coordinator.resume();

  EXPECT_EQ(resumed.executed, 48u);
  EXPECT_FALSE(resumed.aborted);
  EXPECT_EQ(readAll(journalPath(dir)), readAll(journalPath(full)))
      << "resumed journal must be byte-identical to the uninterrupted run";
  EXPECT_EQ(executions->load(), 0u)
      << "every outcome was in the shards; resume must fold, not re-execute";
}

TEST(FleetResume, MissingShardsAreReExecutedNotFatal) {
  const std::string full = scratchDir("noshard_full");
  {
    ThreadFleet fleet;
    FleetOptions options = ridgeFleetOptions(31, 32, 2, full);
    options.launcher = fleet.launcher(ridgeWorkerFactory());
    FleetCoordinator coordinator(std::move(options), ridgeFactory());
    coordinator.run();
  }

  const std::string dir = scratchDir("noshard_cut");
  {
    ThreadFleet fleet;
    FleetOptions options = ridgeFleetOptions(31, 32, 2, dir);
    options.launcher = fleet.launcher(ridgeWorkerFactory());
    FleetCoordinator coordinator(std::move(options), ridgeFactory());
    coordinator.run();
  }
  const std::string journal = readAll(journalPath(dir));
  writeAll(journalPath(dir), journal.substr(0, cutOffset(journal, 12, 0)));
  removeShards(dir);  // the whole recovery channel is gone

  ThreadFleet fleet;
  FleetOptions options;
  options.campaign.outDir = dir;
  options.launcher = fleet.launcher(ridgeWorkerFactory());
  FleetCoordinator coordinator(std::move(options), ridgeFactory());
  const CampaignResult resumed = coordinator.resume();
  EXPECT_EQ(resumed.executed, 32u);
  EXPECT_EQ(readAll(journalPath(dir)), readAll(journalPath(full)));
}

TEST(FleetResume, SingleProcessDirectoryIsRejected) {
  const std::string dir = scratchDir("wrong_mode");
  CampaignOptions options;
  options.totalTests = 8;
  options.outDir = dir;
  CampaignRunner(ridgeFactory(), options).run();  // writes mode="process"

  ThreadFleet fleet;
  FleetOptions fleetOptions;
  fleetOptions.campaign.outDir = dir;
  fleetOptions.launcher = fleet.launcher(ridgeWorkerFactory());
  FleetCoordinator coordinator(std::move(fleetOptions), ridgeFactory());
  EXPECT_THROW(coordinator.resume(), std::runtime_error);
}

// --- wedge containment -------------------------------------------------------

TEST(FleetWedge, WedgedScenarioIsKilledAndFoldedAsTimedOut) {
  // Discover the deterministic first point for this seed, then wedge every
  // executor on exactly that point. wedgeKillLimit=1 folds it as timed out
  // after the first kill instead of re-wedging another worker.
  core::Point wedgePoint;
  {
    RidgeExecutor probe;
    core::Controller controller(probe, core::defaultPlugins(probe.space()),
                                core::ControllerOptions{}, 41);
    wedgePoint = controller.acquireScenario().point;
  }
  const WorkerExecutorFactory sleepyOnPoint =
      [wedgePoint](const std::string&, std::uint64_t) {
        class Sleepy final : public core::ScenarioExecutor {
         public:
          explicit Sleepy(core::Point wedge) : wedge_(std::move(wedge)) {}
          core::Outcome execute(const core::Point& point) override {
            if (point == wedge_) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1500));
            }
            return inner_.execute(point);
          }
          const core::Hyperspace& space() const noexcept override {
            return inner_.space();
          }

         private:
          RidgeExecutor inner_;
          core::Point wedge_;
        };
        return std::make_unique<Sleepy>(wedgePoint);
      };

  ThreadFleet fleet;
  FleetOptions options = ridgeFleetOptions(41, 24, 2, "");
  options.campaign.scenarioTimeoutMs = 150;
  options.wedgeKillLimit = 1;
  options.launcher = fleet.launcher(sleepyOnPoint);
  FleetCoordinator coordinator(std::move(options), ridgeFactory());
  const CampaignResult result = coordinator.run();

  EXPECT_EQ(result.executed, 24u);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.timedOut, 1u) << "the wedged scenario folds as timed out";
  EXPECT_GE(result.workerCrashes, 1u) << "the wedged worker was killed";
  // No respawn assertion: the healthy worker usually drains the remaining
  // budget before the killed slot's backoff expires.
}

// --- graceful drain ----------------------------------------------------------

TEST(FleetDrain, DrainStopsEarlyWithAPrefixJournalThatResumesToTheFullRun) {
  const std::string full = scratchDir("drain_full");
  {
    ThreadFleet fleet;
    FleetOptions options = ridgeFleetOptions(53, 48, 2, full);
    options.launcher = fleet.launcher(ridgeWorkerFactory());
    FleetCoordinator coordinator(std::move(options), ridgeFactory());
    coordinator.run();
  }

  // Thread workers share the address space, so the executor itself can
  // pull the drain cord (standing in for the SIGTERM handler) mid-run.
  const std::string dir = scratchDir("drain_cut");
  std::atomic<bool> drain{false};
  auto seen = std::make_shared<std::atomic<std::size_t>>(0);
  const WorkerExecutorFactory draining =
      [&drain, seen](const std::string&, std::uint64_t) {
        class Draining final : public core::ScenarioExecutor {
         public:
          Draining(std::atomic<bool>* flag,
                   std::shared_ptr<std::atomic<std::size_t>> seen)
              : flag_(flag), seen_(std::move(seen)) {}
          core::Outcome execute(const core::Point& point) override {
            if (seen_->fetch_add(1) + 1 >= 10) flag_->store(true);
            return inner_.execute(point);
          }
          const core::Hyperspace& space() const noexcept override {
            return inner_.space();
          }

         private:
          RidgeExecutor inner_;
          std::atomic<bool>* flag_;
          std::shared_ptr<std::atomic<std::size_t>> seen_;
        };
        return std::make_unique<Draining>(&drain, seen);
      };
  {
    ThreadFleet fleet;
    FleetOptions options = ridgeFleetOptions(53, 48, 2, dir);
    options.drainFlag = &drain;
    options.launcher = fleet.launcher(draining);
    FleetCoordinator coordinator(std::move(options), ridgeFactory());
    const CampaignResult result = coordinator.run();
    EXPECT_GE(result.executed, 10u);
    EXPECT_LT(result.executed, 48u) << "drained well before the budget";
    EXPECT_FALSE(result.aborted);
  }
  const std::string fullJournal = readAll(journalPath(full));
  const std::string drained = readAll(journalPath(dir));
  ASSERT_LT(drained.size(), fullJournal.size());
  EXPECT_EQ(drained, fullJournal.substr(0, drained.size()))
      << "a drained journal is a canonical prefix of the full run's";

  // And the drained directory resumes to the byte-identical full journal.
  ThreadFleet fleet;
  FleetOptions options;
  options.campaign.outDir = dir;
  options.launcher = fleet.launcher(ridgeWorkerFactory());
  FleetCoordinator coordinator(std::move(options), ridgeFactory());
  const CampaignResult resumed = coordinator.resume();
  EXPECT_EQ(resumed.executed, 48u);
  EXPECT_EQ(readAll(journalPath(dir)), fullJournal);
}

// --- remote TCP workers ------------------------------------------------------

TEST(FleetTcp, RemoteWorkerConnectsOverLoopbackAndCompletesTheCampaign) {
  FleetOptions options = ridgeFleetOptions(61, 16, 0, "");
  options.remoteSlots = 1;
  options.batch = 4;
  FleetCoordinator coordinator(std::move(options), ridgeFactory());
  const std::uint16_t port = coordinator.listenPort();
  ASSERT_NE(port, 0);

  std::thread worker([port] {
    const auto fd = util::connectTcp("127.0.0.1", port);
    ASSERT_TRUE(fd.has_value());
    EXPECT_EQ(runWorker(*fd, ridgeWorkerFactory()), kWorkerExitClean)
        << "the coordinator shuts remote workers down with a frame";
  });
  const CampaignResult result = coordinator.run();
  worker.join();
  EXPECT_EQ(result.executed, 16u);
  EXPECT_FALSE(result.aborted);
}

TEST(FleetTcp, ListenTcpHonorsExplicitBindAddressAndRejectsGarbage) {
  const auto listener = util::listenTcp(0, "127.0.0.1");
  ASSERT_TRUE(listener.has_value());
  ASSERT_NE(listener->port, 0);
  const auto client = util::connectTcp("127.0.0.1", listener->port);
  ASSERT_TRUE(client.has_value());
  const auto accepted = util::acceptTcp(listener->fd);
  EXPECT_TRUE(accepted.has_value());
  util::closeFd(*client);
  if (accepted) util::closeFd(*accepted);
  util::closeFd(listener->fd);

  EXPECT_FALSE(util::listenTcp(0, "not-an-address").has_value());
  EXPECT_FALSE(util::listenTcp(0, "256.1.1.1").has_value());
  EXPECT_FALSE(util::listenTcp(0, "").has_value());
}

TEST(FleetTcp, CoordinatorBindsTheConfiguredAddressAndPort) {
  // Reserve a free port, release it, then ask the coordinator for exactly
  // that 127.0.0.1:PORT (SO_REUSEADDR makes the immediate rebind safe).
  const auto probe = util::listenTcp(0, "127.0.0.1");
  ASSERT_TRUE(probe.has_value());
  const std::uint16_t port = probe->port;
  util::closeFd(probe->fd);

  FleetOptions options = ridgeFleetOptions(62, 8, 0, "");
  options.remoteSlots = 1;
  options.bindAddr = "127.0.0.1";
  options.bindPort = port;
  FleetCoordinator coordinator(std::move(options), ridgeFactory());
  ASSERT_EQ(coordinator.listenPort(), port);

  std::thread worker([port] {
    const auto fd = util::connectTcp("127.0.0.1", port);
    ASSERT_TRUE(fd.has_value());
    EXPECT_EQ(runWorker(*fd, ridgeWorkerFactory()), kWorkerExitClean);
  });
  const CampaignResult result = coordinator.run();
  worker.join();
  EXPECT_EQ(result.executed, 8u);
  EXPECT_FALSE(result.aborted);
}

TEST(FleetTcp, UnbindableAddressFailsConstructionLoudly) {
  FleetOptions options = ridgeFleetOptions(63, 8, 0, "");
  options.remoteSlots = 1;
  options.bindAddr = "203.0.113.1";  // TEST-NET-3: never a local interface
  EXPECT_THROW(FleetCoordinator(std::move(options), ridgeFactory()),
               std::runtime_error);
}

}  // namespace
}  // namespace avd::campaign::fleet
