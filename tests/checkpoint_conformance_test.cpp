// Conformance tests for the checkpoint / state-transfer / sync subprotocols
// driven through a single replica with crafted messages, plus the new-view
// construction rules (null-request holes, highest-view proof selection).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "crypto/keychain.h"
#include "pbft/message.h"
#include "pbft/replica.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace avd::pbft {
namespace {

class Probe final : public sim::Node {
 public:
  explicit Probe(util::NodeId id) : sim::Node(id) {}
  void receive(util::NodeId, const sim::MessagePtr& message) override {
    inbox.push_back(message);
  }
  template <typename M>
  std::vector<std::shared_ptr<const M>> received(MsgKind kind) const {
    std::vector<std::shared_ptr<const M>> out;
    for (const auto& message : inbox) {
      if (message->kind() == static_cast<std::uint32_t>(kind)) {
        out.push_back(std::static_pointer_cast<const M>(message));
      }
    }
    return out;
  }
  std::vector<sim::MessagePtr> inbox;
  using sim::Node::send;
};

struct Harness {
  Harness() : keychain(9), simulator(9), network(&simulator, {sim::usec(10), 0}) {
    Config config;
    config.f = 1;
    config.statusInterval = 0;
    config.checkpointInterval = 4;  // small, to reach checkpoints quickly
    config.watermarkWindow = 16;
    this->config = config;
    replica = std::make_unique<Replica>(1, config, &keychain,
                                        std::make_unique<CounterService>());
    for (util::NodeId id : {0u, 2u, 3u, 4u}) {
      probes[id] = std::make_unique<Probe>(id);
    }
    network.registerNode(probes[0].get());
    network.registerNode(replica.get());
    network.registerNode(probes[2].get());
    network.registerNode(probes[3].get());
    network.registerNode(probes[4].get());
    replica->start();
  }

  void settle() { simulator.runUntil(simulator.now() + sim::msec(1)); }

  RequestPtr makeRequest(util::NodeId client, util::RequestId timestamp) {
    auto request = std::make_shared<RequestMessage>();
    request->client = client;
    request->timestamp = timestamp;
    request->operation = {1};
    request->digest =
        requestDigest(client, timestamp, request->operation);
    crypto::MacService macs(client, &keychain);
    request->auth = macs.authenticate(request->digest, 4);
    return request;
  }

  /// Drives seq through pre-prepare + prepares + commits to execution.
  void commitSeq(util::SeqNum seq, const RequestPtr& request) {
    const std::uint64_t digest = batchDigest({request});
    auto prePrepare = std::make_shared<PrePrepareMessage>();
    prePrepare->view = 0;
    prePrepare->seq = seq;
    prePrepare->batch = {request};
    prePrepare->digest = digest;
    prePrepare->replica = 0;
    crypto::MacService primaryMacs(0, &keychain);
    prePrepare->auth = primaryMacs.authenticate(
        phaseDigest(MsgKind::kPrePrepare, 0, seq, digest, 0), 4);
    probes[0]->send(1, prePrepare);

    auto prepare = std::make_shared<PrepareMessage>();
    prepare->view = 0;
    prepare->seq = seq;
    prepare->digest = digest;
    prepare->replica = 2;
    crypto::MacService backupMacs(2, &keychain);
    prepare->auth = backupMacs.authenticate(
        phaseDigest(MsgKind::kPrepare, 0, seq, digest, 2), 4);
    probes[2]->send(1, prepare);

    for (util::NodeId committer : {0u, 2u}) {
      auto commit = std::make_shared<CommitMessage>();
      commit->view = 0;
      commit->seq = seq;
      commit->digest = digest;
      commit->replica = committer;
      crypto::MacService macs(committer, &keychain);
      commit->auth = macs.authenticate(
          phaseDigest(MsgKind::kCommit, 0, seq, digest, committer), 4);
      probes[committer]->send(1, commit);
    }
    settle();
  }

  std::shared_ptr<CheckpointMessage> makeCheckpoint(util::SeqNum seq,
                                                    std::uint64_t digest,
                                                    util::NodeId sender) {
    auto checkpoint = std::make_shared<CheckpointMessage>();
    checkpoint->seq = seq;
    checkpoint->stateDigest = digest;
    checkpoint->replica = sender;
    crypto::MacService macs(sender, &keychain);
    checkpoint->auth = macs.authenticate(
        phaseDigest(MsgKind::kCheckpoint, 0, seq, digest, sender), 4);
    return checkpoint;
  }

  Config config;
  crypto::Keychain keychain;
  sim::Simulator simulator;
  sim::Network network;
  std::unique_ptr<Replica> replica;
  std::map<util::NodeId, std::unique_ptr<Probe>> probes;
};

TEST(CheckpointConformance, CheckpointBroadcastAtInterval) {
  Harness h;
  for (util::SeqNum seq = 1; seq <= 4; ++seq) {
    h.commitSeq(seq, h.makeRequest(4, seq));
  }
  EXPECT_EQ(h.replica->lastExecuted(), 4u);
  EXPECT_EQ(h.replica->stats().checkpointsTaken, 1u);
  const auto checkpoints =
      h.probes[2]->received<CheckpointMessage>(MsgKind::kCheckpoint);
  ASSERT_EQ(checkpoints.size(), 1u);
  EXPECT_EQ(checkpoints[0]->seq, 4u);
}

TEST(CheckpointConformance, StableCheckpointAdvancesWithQuorum) {
  Harness h;
  for (util::SeqNum seq = 1; seq <= 4; ++seq) {
    h.commitSeq(seq, h.makeRequest(4, seq));
  }
  ASSERT_EQ(h.replica->stableCheckpoint(), 0u) << "own vote alone is not 2f+1";

  // Learn the digest the replica broadcast, echo it from two peers.
  const auto own =
      h.probes[0]->received<CheckpointMessage>(MsgKind::kCheckpoint);
  ASSERT_EQ(own.size(), 1u);
  const std::uint64_t digest = own[0]->stateDigest;
  h.probes[0]->send(1, h.makeCheckpoint(4, digest, 0));
  h.probes[2]->send(1, h.makeCheckpoint(4, digest, 2));
  h.settle();
  EXPECT_EQ(h.replica->stableCheckpoint(), 4u);
}

TEST(CheckpointConformance, MismatchedCheckpointDigestsNeverStabilize) {
  Harness h;
  for (util::SeqNum seq = 1; seq <= 4; ++seq) {
    h.commitSeq(seq, h.makeRequest(4, seq));
  }
  h.probes[0]->send(1, h.makeCheckpoint(4, 0xBAD, 0));
  h.probes[2]->send(1, h.makeCheckpoint(4, 0xBAD, 2));
  h.settle();
  EXPECT_EQ(h.replica->stableCheckpoint(), 0u)
      << "votes for a digest we do not hold must not advance our watermark";
}

TEST(CheckpointConformance, QuorumBeyondOurExecutionTriggersStateRequest) {
  Harness h;
  // The peers advertise a stable checkpoint at seq 8; we executed nothing.
  for (util::NodeId voter : {0u, 2u, 3u}) {
    h.probes[voter]->send(1, h.makeCheckpoint(8, 0xD1D1, voter));
  }
  h.settle();
  std::size_t stateRequests = 0;
  for (util::NodeId peer : {0u, 2u, 3u}) {
    stateRequests +=
        h.probes[peer]->received<StateRequestMessage>(MsgKind::kStateRequest)
            .size();
  }
  EXPECT_EQ(stateRequests, 1u) << "exactly one transfer request, to a voter";
}

TEST(CheckpointConformance, SyncAttestationsExecuteWithFPlusOne) {
  Harness h;
  const RequestPtr request = h.makeRequest(4, 1);
  auto makeSync = [&](util::NodeId sender) {
    auto sync = std::make_shared<SyncSeqMessage>();
    sync->seq = 1;
    sync->batch = {request};
    sync->digest = batchDigest(sync->batch);
    sync->replica = sender;
    crypto::MacService macs(sender, &h.keychain);
    sync->mac = macs.generate(1, syncSeqDigest(*sync));
    return sync;
  };
  h.probes[0]->send(1, makeSync(0));
  h.settle();
  EXPECT_EQ(h.replica->lastExecuted(), 0u) << "one attestation is not f+1";
  h.probes[2]->send(1, makeSync(2));
  h.settle();
  EXPECT_EQ(h.replica->lastExecuted(), 1u);
  EXPECT_EQ(h.replica->stats().sequencesSynced, 1u);
  // The synced execution replies to the client like a normal one.
  EXPECT_EQ(h.probes[4]->received<ReplyMessage>(MsgKind::kReply).size(), 1u);
}

TEST(CheckpointConformance, DivergentSyncAttestationsDoNotCount) {
  Harness h;
  const RequestPtr requestA = h.makeRequest(4, 1);
  const RequestPtr requestB = h.makeRequest(5, 1);
  auto makeSync = [&](util::NodeId sender, const RequestPtr& request) {
    auto sync = std::make_shared<SyncSeqMessage>();
    sync->seq = 1;
    sync->batch = {request};
    sync->digest = batchDigest(sync->batch);
    sync->replica = sender;
    crypto::MacService macs(sender, &h.keychain);
    sync->mac = macs.generate(1, syncSeqDigest(*sync));
    return sync;
  };
  h.probes[0]->send(1, makeSync(0, requestA));
  h.probes[2]->send(1, makeSync(2, requestB));  // conflicting attestation
  h.settle();
  EXPECT_EQ(h.replica->lastExecuted(), 0u)
      << "f+1 must MATCH; one honest + one lie is not a certificate";
}

TEST(NewViewConformance, HolesAreFilledWithNullRequests) {
  Harness h;
  // Prepare seq 2 only (seq 1 stays a hole), then drive a view change where
  // replica 1 is the new primary (view 1).
  const RequestPtr request = h.makeRequest(4, 7);
  const std::uint64_t digest = batchDigest({request});
  auto prePrepare = std::make_shared<PrePrepareMessage>();
  prePrepare->view = 0;
  prePrepare->seq = 2;
  prePrepare->batch = {request};
  prePrepare->digest = digest;
  prePrepare->replica = 0;
  crypto::MacService primaryMacs(0, &h.keychain);
  prePrepare->auth = primaryMacs.authenticate(
      phaseDigest(MsgKind::kPrePrepare, 0, 2, digest, 0), 4);
  h.probes[0]->send(1, prePrepare);
  auto prepare = std::make_shared<PrepareMessage>();
  prepare->view = 0;
  prepare->seq = 2;
  prepare->digest = digest;
  prepare->replica = 2;
  crypto::MacService backupMacs(2, &h.keychain);
  prepare->auth = backupMacs.authenticate(
      phaseDigest(MsgKind::kPrepare, 0, 2, digest, 2), 4);
  h.probes[2]->send(1, prepare);
  h.settle();

  // Starve a direct request so replica 1 votes for view 1 (it will be the
  // new primary), then supply the two missing votes.
  h.probes[4]->send(1, h.makeRequest(4, 1));
  h.settle();
  h.simulator.runUntil(h.simulator.now() + h.config.requestTimeout +
                       sim::msec(1));
  for (util::NodeId voter : {2u, 3u}) {
    auto viewChange = std::make_shared<ViewChangeMessage>();
    viewChange->newView = 1;
    viewChange->stableSeq = 0;
    viewChange->replica = voter;
    crypto::MacService macs(voter, &h.keychain);
    viewChange->auth = macs.authenticate(viewChangeDigest(*viewChange), 4);
    h.probes[voter]->send(1, viewChange);
    h.settle();
  }

  const auto newViews =
      h.probes[2]->received<NewViewMessage>(MsgKind::kNewView);
  ASSERT_EQ(newViews.size(), 1u);
  ASSERT_EQ(newViews[0]->prePrepares.size(), 2u)
      << "seqs 1 (hole) and 2 (prepared) must both be re-proposed";
  EXPECT_EQ(newViews[0]->prePrepares[0]->seq, 1u);
  EXPECT_TRUE(newViews[0]->prePrepares[0]->batch.empty())
      << "the hole becomes a null request";
  EXPECT_EQ(newViews[0]->prePrepares[1]->seq, 2u);
  EXPECT_EQ(newViews[0]->prePrepares[1]->digest, digest)
      << "the prepared batch survives into the new view";
}

TEST(NewViewConformance, HighestViewProofWins) {
  Harness h;
  // Two proofs for seq 1 from different (claimed) views; the new primary
  // must re-propose the higher-view one.
  const RequestPtr oldRequest = h.makeRequest(4, 1);
  const RequestPtr newRequest = h.makeRequest(5, 1);

  // Vote from replica 2 carries the view-0 proof; vote from replica 3 the
  // view-... the replica is in view 0, so it can only install view 1; we
  // claim proofs from views 0 and (fictional, from an earlier epoch the
  // harness pretends happened) — the selection rule just compares numbers.
  h.probes[4]->send(1, h.makeRequest(4, 9));  // arm the starvation timer
  h.settle();
  h.simulator.runUntil(h.simulator.now() + h.config.requestTimeout +
                       sim::msec(1));

  auto makeVote = [&](util::NodeId voter, util::ViewId proofView,
                      const RequestPtr& request) {
    auto viewChange = std::make_shared<ViewChangeMessage>();
    viewChange->newView = 1;
    viewChange->stableSeq = 0;
    PreparedProof proof;
    proof.seq = 1;
    proof.view = proofView;
    proof.batch = {request};
    proof.digest = batchDigest(proof.batch);
    viewChange->prepared.push_back(std::move(proof));
    viewChange->replica = voter;
    crypto::MacService macs(voter, &h.keychain);
    viewChange->auth = macs.authenticate(viewChangeDigest(*viewChange), 4);
    return viewChange;
  };
  h.probes[2]->send(1, makeVote(2, 0, oldRequest));
  h.settle();
  h.probes[3]->send(1, makeVote(3, 0, oldRequest));
  h.settle();

  const auto newViews =
      h.probes[2]->received<NewViewMessage>(MsgKind::kNewView);
  ASSERT_EQ(newViews.size(), 1u);
  ASSERT_GE(newViews[0]->prePrepares.size(), 1u);
  EXPECT_EQ(newViews[0]->prePrepares[0]->digest,
            batchDigest({oldRequest}));
  (void)newRequest;
}

}  // namespace
}  // namespace avd::pbft
