// Protocol-conformance tests driving a single PBFT Client with crafted
// replies: f+1 matching-reply acceptance, MAC/digest validation, divergent
// (Byzantine) reply handling, view tracking, and retransmission behaviour.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/hash.h"
#include "crypto/keychain.h"
#include "pbft/client.h"
#include "pbft/message.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace avd::pbft {
namespace {

class Probe final : public sim::Node {
 public:
  explicit Probe(util::NodeId id) : sim::Node(id) {}
  void receive(util::NodeId, const sim::MessagePtr& message) override {
    inbox.push_back(message);
  }
  std::vector<RequestPtr> requests() const {
    std::vector<RequestPtr> out;
    for (const auto& message : inbox) {
      if (message->kind() == static_cast<std::uint32_t>(MsgKind::kRequest)) {
        out.push_back(std::static_pointer_cast<const RequestMessage>(message));
      }
    }
    return out;
  }
  std::vector<sim::MessagePtr> inbox;
  using sim::Node::send;
};

struct Harness {
  explicit Harness(ClientBehavior behavior = {})
      : keychain(3), simulator(3), network(&simulator, {sim::usec(10), 0}) {
    Config config;
    config.f = 1;
    client = std::make_unique<Client>(4, config, &keychain, behavior,
                                      sim::msec(150));
    for (util::NodeId id : {0u, 1u, 2u, 3u}) {
      probes[id] = std::make_unique<Probe>(id);
      network.registerNode(probes[id].get());
    }
    network.registerNode(client.get());
    client->start();
    settle();
  }

  void settle() { simulator.runUntil(simulator.now() + sim::msec(20)); }

  /// Builds a valid reply from `replica` for the client's outstanding
  /// request; `resultByte` controls the result payload.
  std::shared_ptr<ReplyMessage> makeReply(util::NodeId replica,
                                          util::RequestId timestamp,
                                          std::uint8_t resultByte,
                                          util::ViewId view = 0) {
    auto reply = std::make_shared<ReplyMessage>();
    reply->view = view;
    reply->client = 4;
    reply->timestamp = timestamp;
    reply->replica = replica;
    reply->result = {resultByte};
    reply->resultDigest = util::fnv1a(reply->result);
    crypto::MacService macs(replica, &keychain);
    reply->mac = macs.generate(4, replyDigest(*reply));
    return reply;
  }

  void deliver(util::NodeId from, sim::MessagePtr message) {
    probes[from]->send(4, std::move(message));
    settle();
  }

  crypto::Keychain keychain;
  sim::Simulator simulator;
  sim::Network network;
  std::unique_ptr<Client> client;
  std::map<util::NodeId, std::unique_ptr<Probe>> probes;
};

TEST(ClientConformance, FirstRequestGoesToPrimaryOnly) {
  Harness h;
  EXPECT_EQ(h.probes[0]->requests().size(), 1u);
  EXPECT_EQ(h.probes[1]->requests().size(), 0u);
  EXPECT_EQ(h.client->issued(), 1u);
}

TEST(ClientConformance, RequestCarriesFullAuthenticator) {
  Harness h;
  const auto requests = h.probes[0]->requests();
  ASSERT_EQ(requests.size(), 1u);
  ASSERT_EQ(requests[0]->auth.tags.size(), 4u);
  for (util::NodeId replica = 0; replica < 4; ++replica) {
    crypto::MacService macs(replica, &h.keychain);
    EXPECT_TRUE(macs.verify(4, requests[0]->digest,
                            requests[0]->auth.tags[replica]))
        << "replica " << replica;
  }
}

TEST(ClientConformance, FPlusOneMatchingRepliesComplete) {
  Harness h;
  h.deliver(0, h.makeReply(0, 1, 7));
  EXPECT_EQ(h.client->completed(), 0u) << "one reply is not f+1";
  h.deliver(1, h.makeReply(1, 1, 7));
  EXPECT_EQ(h.client->completed(), 1u);
  EXPECT_EQ(h.client->lastResult(), util::Bytes{7});
  EXPECT_EQ(h.client->issued(), 2u) << "closed loop issues the next request";
}

TEST(ClientConformance, DuplicateRepliesFromOneReplicaDoNotCount) {
  Harness h;
  h.deliver(0, h.makeReply(0, 1, 7));
  h.deliver(0, h.makeReply(0, 1, 7));
  h.deliver(0, h.makeReply(0, 1, 7));
  EXPECT_EQ(h.client->completed(), 0u)
      << "votes are per replica, not per message";
}

TEST(ClientConformance, DivergentResultsNeedMatchingQuorum) {
  Harness h;
  // A Byzantine replica answers with a different result.
  h.deliver(0, h.makeReply(0, 1, 7));
  h.deliver(1, h.makeReply(1, 1, 9));
  EXPECT_EQ(h.client->completed(), 0u) << "7 vs 9: no f+1 agreement yet";
  h.deliver(2, h.makeReply(2, 1, 9));
  EXPECT_EQ(h.client->completed(), 1u);
  EXPECT_EQ(h.client->lastResult(), util::Bytes{9})
      << "the matching pair wins; the lone answer is outvoted";
}

TEST(ClientConformance, TamperedReplyMacIsIgnored) {
  Harness h;
  auto bad = h.makeReply(0, 1, 7);
  bad->mac = ~bad->mac;
  h.deliver(0, bad);
  h.deliver(1, h.makeReply(1, 1, 7));
  EXPECT_EQ(h.client->completed(), 0u)
      << "the tampered vote must not count toward f+1";
}

TEST(ClientConformance, ResultDigestMismatchIsIgnored) {
  Harness h;
  auto bad = h.makeReply(0, 1, 7);
  bad->result = {8};  // body no longer matches the digest (nor the MAC)
  h.deliver(0, bad);
  h.deliver(1, h.makeReply(1, 1, 7));
  EXPECT_EQ(h.client->completed(), 0u);
}

TEST(ClientConformance, StaleTimestampRepliesAreIgnored) {
  Harness h;
  h.deliver(0, h.makeReply(0, 1, 7));
  h.deliver(1, h.makeReply(1, 1, 7));  // completes ts=1, issues ts=2
  ASSERT_EQ(h.client->completed(), 1u);
  h.deliver(2, h.makeReply(2, 1, 7));  // late vote for the OLD request
  h.deliver(3, h.makeReply(3, 1, 7));
  EXPECT_EQ(h.client->completed(), 1u);
}

TEST(ClientConformance, RetransmissionBroadcastsToAllReplicas) {
  Harness h;
  // No replies: let the 150 ms retransmission timer fire.
  h.simulator.runUntil(h.simulator.now() + sim::msec(200));
  EXPECT_EQ(h.client->retransmissions(), 1u);
  for (util::NodeId replica : {1u, 2u, 3u}) {
    EXPECT_EQ(h.probes[replica]->requests().size(), 1u)
        << "replica " << replica;
  }
  // The retransmission regenerates the authenticator (fresh MAC calls) —
  // the property the 12-bit corruption mask's round structure builds on.
  EXPECT_EQ(h.client->macs().generateCallCount(), 8u);
}

TEST(ClientConformance, RetransmissionBackoffIsCappedAtTheConfiguredFactor) {
  ClientBehavior behavior;
  behavior.retxBackoffFactor = 2.0;
  behavior.retxBackoffCap = 8.0;
  Harness h(behavior);

  // With no replies, retransmissions fire at 150, +300, +600, then settle
  // at the cap 8 x 150 = 1200 ms. By 5 s that is exactly 6 retransmissions
  // (150, 450, 1050, 2250, 3450, 4650 after issue); unbounded doubling
  // would only reach 5 (the 6th not until 9450 ms).
  h.simulator.runUntil(sim::msec(5000));
  EXPECT_EQ(h.client->retransmissions(), 6u);
}

TEST(ClientConformance, RetransmissionJitterIsDeterministicPerSeed) {
  ClientBehavior behavior;
  behavior.retxBackoffFactor = 2.0;
  behavior.retxJitter = sim::msec(50);

  auto countBy = [&](sim::Time horizon) {
    Harness h(behavior);
    h.simulator.runUntil(horizon);
    return h.client->retransmissions();
  };
  // Same seed, same schedule: the jitter draws come from the simulator RNG.
  EXPECT_EQ(countBy(sim::msec(5000)), countBy(sim::msec(5000)));
  EXPECT_GE(countBy(sim::msec(5000)), 4u);
}

TEST(ClientConformance, DefaultBehaviorKeepsFixedRetransmissionCadence) {
  Harness h;
  // Factor 1.0 (the default) must preserve the fixed 150 ms cadence the
  // Big MAC attack's round structure depends on: 6 retransmissions by 1 s.
  h.simulator.runUntil(sim::msec(1000));
  EXPECT_EQ(h.client->retransmissions(), 6u);
}

TEST(ClientConformance, ViewTrackingRedirectsNextRequest) {
  Harness h;
  h.deliver(0, h.makeReply(0, 1, 7, /*view=*/1));
  h.deliver(1, h.makeReply(1, 1, 7, /*view=*/1));
  ASSERT_EQ(h.client->completed(), 1u);
  EXPECT_EQ(h.client->believedView(), 1u);
  // The next request goes to the primary of view 1 = replica 1.
  EXPECT_EQ(h.probes[1]->requests().size(), 1u);
}

}  // namespace
}  // namespace avd::pbft
