// Shutdown-path regression tests for ThreadPool and Simulator (ISSUE 1
// satellite). These are written to give TSan something to bite on: the CI
// matrix runs them under -fsanitize=thread, so a data race in the pool's
// stop/drain handshake or any hidden shared state between Simulator
// instances fails the build. Under plain builds they still assert the
// drain-on-destruction contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "sim/simulator.h"

namespace avd::util {
namespace {

TEST(ThreadPoolShutdown, DestructorDrainsQueuedTasks) {
  // Far more tasks than workers: most are still queued when the destructor
  // runs, and every one must still execute exactly once.
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 2000; ++i) {
      (void)pool.submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(executed.load(), 2000);
}

TEST(ThreadPoolShutdown, RapidConstructDestroyCycles) {
  // The racy window is between notify_all() and the workers observing
  // stopping_; hammer it.
  for (int cycle = 0; cycle < 200; ++cycle) {
    std::atomic<int> executed{0};
    {
      ThreadPool pool(4);
      for (int i = 0; i < 16; ++i) {
        (void)pool.submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    }
    ASSERT_EQ(executed.load(), 16) << "cycle " << cycle;
  }
}

TEST(ThreadPoolShutdown, ConcurrentSubmittersThenDestroy) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(3);
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&pool, &executed] {
        for (int i = 0; i < 500; ++i) {
          (void)pool.submit([&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
    // Pool destructor runs with most of the 2000 tasks still queued.
  }
  EXPECT_EQ(executed.load(), 4 * 500);
}

TEST(ThreadPoolShutdown, ParallelForResultsAreFullyPublished) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::size_t> out(257, 0);
    pool.parallelFor(out.size(), [&out](std::size_t i) { out[i] = i + 1; });
    // parallelFor blocks until every lane finished; all writes must be
    // visible here without extra synchronization.
    for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i + 1);
  }
}

TEST(ThreadPoolShutdown, FutureResultsSurviveShutdownRace) {
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(2);
    futures.reserve(100);
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.submit([i] { return i * i; }));
    }
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

}  // namespace
}  // namespace avd::util

namespace avd::sim {
namespace {

TEST(SimulatorShutdown, IndependentSimulatorsShareNoState) {
  // The simulator is single-threaded by design; this pins down that two
  // instances driven from different threads touch no hidden globals
  // (TSan would flag any).
  std::vector<std::thread> drivers;
  std::vector<std::size_t> executed(4, 0);
  for (std::size_t t = 0; t < 4; ++t) {
    drivers.emplace_back([t, &executed] {
      Simulator simulator;
      std::size_t fired = 0;
      for (int i = 0; i < 500; ++i) {
        (void)simulator.scheduleAt(msec(i), [&fired] { ++fired; });
      }
      // Cancel a band of timers, then drain; cancelled ones must not fire.
      for (TimerId id = 100; id < 200; ++id) simulator.cancel(id);
      simulator.runUntil(sec(10));
      executed[t] = fired;
    });
  }
  for (std::thread& driver : drivers) driver.join();
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(executed[t], 400u) << "driver " << t;
  }
}

TEST(SimulatorShutdown, DestructionWithPendingEventsIsClean) {
  // Events still queued at destruction must simply be dropped — their
  // callbacks own captured state that is released, not invoked.
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> observer = token;
  {
    Simulator simulator;
    (void)simulator.scheduleAt(sec(1), [token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(observer.expired()) << "event still holds the capture";
    // No run: destructor discards the pending event.
  }
  EXPECT_TRUE(observer.expired()) << "pending event leaked its capture";
}

}  // namespace
}  // namespace avd::sim
