// Tests for the Deployment harness itself: node layout, measurement
// windows, correct/malicious accounting, network counters, and the
// PbftAttackExecutor's scenario-to-deployment mapping.
#include <gtest/gtest.h>

#include "avd/attacker_power.h"
#include "common/gray_code.h"
#include "avd/pbft_executor.h"
#include "faultinject/behaviors.h"
#include "faultinject/mac_corruptor.h"
#include "pbft/deployment.h"

namespace avd::pbft {
namespace {

TEST(DeploymentLayout, NodeIdsAreDense) {
  DeploymentConfig config;
  config.pbft.f = 2;  // 7 replicas
  config.maliciousClients = 2;
  config.correctClients = 3;
  Deployment deployment(config);

  EXPECT_EQ(deployment.replicaCount(), 7u);
  EXPECT_EQ(deployment.maliciousClientId(0), 7u);
  EXPECT_EQ(deployment.maliciousClientId(1), 8u);
  EXPECT_EQ(deployment.correctClientId(0), 9u);
  EXPECT_EQ(deployment.correctClientId(2), 11u);
  EXPECT_EQ(deployment.maliciousClient(0).id(), 7u);
  EXPECT_EQ(deployment.correctClient(0).id(), 9u);
}

TEST(DeploymentMetrics, WarmupCompletionsAreExcluded) {
  DeploymentConfig config;
  config.correctClients = 5;
  config.warmup = sim::sec(1);
  config.measure = sim::sec(1);
  config.seed = 9;
  Deployment deployment(config);
  const RunResult result = deployment.run();

  std::uint64_t allCompletions = 0;
  for (std::uint32_t i = 0; i < config.correctClients; ++i) {
    allCompletions += deployment.correctClient(i).completed();
  }
  EXPECT_GT(allCompletions, result.correctCompleted)
      << "warmup-period completions must not count";
  EXPECT_NEAR(static_cast<double>(result.correctCompleted),
              static_cast<double>(allCompletions) / 2.0,
              static_cast<double>(allCompletions) * 0.15)
      << "two equal windows should split completions roughly evenly";
}

TEST(DeploymentMetrics, ThroughputNormalizesByMeasureWindow) {
  DeploymentConfig config;
  config.correctClients = 5;
  config.warmup = sim::msec(500);
  config.measure = sim::sec(2);
  config.seed = 10;
  const RunResult result = runScenario(config);
  EXPECT_NEAR(result.throughputRps,
              static_cast<double>(result.correctCompleted) / 2.0, 0.01);
}

TEST(DeploymentMetrics, MaliciousCompletionsCountedSeparately) {
  DeploymentConfig config;
  config.correctClients = 4;
  config.maliciousClients = 2;  // no tools installed: protocol-honest
  config.warmup = sim::msec(300);
  config.measure = sim::sec(1);
  config.seed = 11;
  const RunResult result = runScenario(config);
  EXPECT_GT(result.maliciousCompleted, 0u);
  EXPECT_GT(result.correctCompleted, 0u);
  // Honest "malicious" clients complete at roughly the per-client rate.
  EXPECT_NEAR(static_cast<double>(result.maliciousCompleted) / 2.0,
              static_cast<double>(result.correctCompleted) / 4.0,
              static_cast<double>(result.correctCompleted) * 0.25);
}

TEST(DeploymentMetrics, NetworkCountersPopulated) {
  DeploymentConfig config;
  config.correctClients = 3;
  config.measure = sim::sec(1);
  const RunResult result = runScenario(config);
  EXPECT_GT(result.network.sent, 0u);
  EXPECT_GT(result.network.delivered, 0u);
  EXPECT_GT(result.network.bytesSent, result.network.sent)
      << "every message is at least one byte";
  EXPECT_GT(result.eventsExecuted, result.network.delivered);
}

TEST(DeploymentMetrics, ClientLatencyMatchesCompletionRecords) {
  DeploymentConfig config;
  config.correctClients = 2;
  config.warmup = 0;
  config.measure = sim::sec(1);
  Deployment deployment(config);
  const RunResult result = deployment.run();

  double sum = 0;
  std::uint64_t count = 0;
  for (std::uint32_t i = 0; i < config.correctClients; ++i) {
    for (const Client::Completion& completion :
         deployment.correctClient(i).completions()) {
      if (completion.when < sim::sec(1)) {
        sum += sim::toSeconds(completion.latency);
        ++count;
      }
    }
  }
  ASSERT_GT(count, 0u);
  EXPECT_NEAR(result.avgLatencySec, sum / static_cast<double>(count), 1e-9);
}

TEST(ClientAccounting, RetransmissionsTrackedUnderStall) {
  // A colluding slow primary starves correct clients: they must retransmit.
  DeploymentConfig config = fi::makeSlowPrimaryScenario(3, true, false, 6);
  config.warmup = sim::sec(1);
  config.measure = sim::sec(10);
  Deployment deployment(config);
  deployment.run();
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_GT(deployment.correctClient(i).retransmissions(), 10u)
        << "client " << i;
    EXPECT_EQ(deployment.correctClient(i).completed(), 0u);
    EXPECT_GE(deployment.correctClient(i).issued(), 1u);
  }
}

}  // namespace
}  // namespace avd::pbft

namespace avd::core {
namespace {

TEST(ExecutorMapping, BuildConfigReadsDimensionsByName) {
  Hyperspace space;
  space.add(Dimension::grayBitmask("mac_mask", 12));
  space.add(Dimension::range("correct_clients", 10, 100, 10));
  space.add(Dimension::choice("malicious_clients", {1, 2}));
  space.add(Dimension::choice("replica_behavior", {0, 1, 2}));
  PbftAttackExecutor executor(std::move(space), {});

  const Point point{util::fromGray(0xABC), 4, 1, 2};
  const pbft::DeploymentConfig config = executor.buildConfig(point);
  EXPECT_EQ(config.correctClients, 50u);
  EXPECT_EQ(config.maliciousClients, 2u);
  ASSERT_NE(config.maliciousClientBehavior.macPolicy, nullptr);
  EXPECT_TRUE(config.maliciousClientBehavior.broadcastRequests)
      << "behavior 2 = colluding client";
  ASSERT_TRUE(config.replicaBehaviors.contains(0));
  EXPECT_TRUE(config.replicaBehaviors.at(0).slowPrimary);
  EXPECT_EQ(config.replicaBehaviors.at(0).colludingClient,
            config.pbft.replicaCount());
}

TEST(ExecutorMapping, MissingDimensionsUseDefaults) {
  Hyperspace space;
  space.add(Dimension::grayBitmask("mac_mask", 12));
  PbftExecutorOptions options;
  options.defaultCorrectClients = 33;
  options.defaultMaliciousClients = 2;
  PbftAttackExecutor executor(std::move(space), options);
  const pbft::DeploymentConfig config = executor.buildConfig(Point{0});
  EXPECT_EQ(config.correctClients, 33u);
  EXPECT_EQ(config.maliciousClients, 2u);
  EXPECT_EQ(config.maliciousClientBehavior.macPolicy, nullptr)
      << "mask 0 installs no policy";
}

TEST(ExecutorMapping, SeedIsDeterministicPerPoint) {
  Hyperspace space;
  space.add(Dimension::grayBitmask("mac_mask", 12));
  PbftAttackExecutor executor(space, {});
  PbftAttackExecutor executor2(space, {});
  EXPECT_EQ(executor.buildConfig(Point{5}).seed,
            executor2.buildConfig(Point{5}).seed);
  EXPECT_NE(executor.buildConfig(Point{5}).seed,
            executor.buildConfig(Point{6}).seed);
}

TEST(ExecutorOutcome, RepeatedExecutionIsReproducible) {
  Hyperspace space;
  space.add(Dimension::grayBitmask("mac_mask", 12));
  PbftExecutorOptions options;
  options.measure = sim::msec(800);
  options.defaultCorrectClients = 5;
  PbftAttackExecutor executor(std::move(space), options);
  const Outcome a = executor.execute(Point{100});
  const Outcome b = executor.execute(Point{100});
  EXPECT_DOUBLE_EQ(a.throughputRps, b.throughputRps);
  EXPECT_DOUBLE_EQ(a.impact, b.impact);
  EXPECT_EQ(executor.executedCount(), 2u);
}

TEST(AttackerPowerModel, NamesAreStable) {
  EXPECT_EQ(powerName(AttackerPower::kBlindFuzz), "blind-fuzz");
  EXPECT_EQ(powerName(AttackerPower::kGrayFeedback), "gray-feedback");
  EXPECT_EQ(powerName(AttackerPower::kProtocolAware), "protocol-aware");
}

TEST(AttackerPowerModel, ProtocolAwareFindsFastAndConcentrates) {
  const PowerMeasurement measurement = measureAttackerPower(
      AttackerPower::kProtocolAware, 0.95, 30, 11);
  EXPECT_TRUE(measurement.found);
  EXPECT_LE(measurement.testsToFind, 15u)
      << "behaviour synthesis should find a crash-level attack quickly";
  EXPECT_GT(measurement.strongFraction, 0.3);
}

}  // namespace
}  // namespace avd::core
