// Reproductions of the two PBFT vulnerabilities from §6 as tests: the Big
// MAC attack (inconsistent authenticators -> stall -> view change -> crash
// of the historical implementation) and the slow-primary attack exploiting
// the single view-change timer. Each attack also has a negative control
// showing where the implementation's defences hold.
#include <gtest/gtest.h>

#include "faultinject/behaviors.h"
#include "faultinject/mac_corruptor.h"
#include "pbft/deployment.h"

namespace avd::fi {
namespace {

std::uint64_t crashedReplicas(pbft::Deployment& deployment) {
  std::uint64_t crashed = 0;
  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    crashed += deployment.replica(r).stats().crashedOnViewChange;
  }
  return crashed;
}

std::uint64_t pendedPrePrepares(pbft::Deployment& deployment) {
  std::uint64_t pended = 0;
  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    pended += deployment.replica(r).stats().prePreparesPended;
  }
  return pended;
}

TEST(BigMacAttack, MaskZeroIsHarmless) {
  const pbft::RunResult result =
      pbft::runScenario(makeBigMacScenario(20, 0, 7));
  EXPECT_GT(result.throughputRps, 1000.0);
  EXPECT_EQ(result.maxView, 0u);
  EXPECT_FALSE(result.safetyViolated);
}

TEST(BigMacAttack, FullAttackCrashesTheDeployment) {
  // "by corrupting the MAC in all messages sent by a malicious client, PBFT
  // will perform a view change and crash": the mask is valid only for the
  // primary, so no backup ever authenticates the request, the stall forces
  // a view change, and the crash bug takes out the quorum.
  pbft::Deployment deployment(
      makeBigMacScenario(20, bigMacMaskValidOnlyFor(0, 4), 7));
  const pbft::RunResult result = deployment.run();

  EXPECT_GE(crashedReplicas(deployment), 2u)
      << "enough replicas must crash to destroy the quorum";
  EXPECT_LT(result.throughputRps,
            pbft::runScenario(makeBigMacScenario(20, 0, 7)).throughputRps *
                0.15)
      << "after the crash the deployment serves (almost) nothing";
  EXPECT_FALSE(result.safetyViolated);
}

TEST(BigMacAttack, RotatingMaskDegradesStealthilyWithoutViewChange) {
  // Each replica authenticates one retransmission round per cycle, so
  // parked pre-prepares always resolve and no view change ever fires — the
  // paper's observation that no view change occurs "if every retransmission
  // from the malicious client was correct". But in-order execution still
  // stalls behind each poisoned sequence number for ~2 retransmission
  // rounds, so one client silently slashes throughput by an order of
  // magnitude while staying below the view-change radar.
  pbft::Deployment deployment(
      makeBigMacScenario(20, rotatingBigMacMask(), 7));
  const pbft::RunResult result = deployment.run();

  EXPECT_GT(pendedPrePrepares(deployment), 0u)
      << "digest matching must actually have been exercised";
  EXPECT_EQ(crashedReplicas(deployment), 0u);
  EXPECT_EQ(result.maxView, 0u) << "stealth: no view change, no deposition";
  EXPECT_LT(result.throughputRps,
            pbft::runScenario(makeBigMacScenario(20, 0, 7)).throughputRps *
                0.2)
      << "repeated in-order stalls must cost most of the throughput";
}

TEST(BigMacAttack, FullCorruptionIsFilteredAtEntry) {
  // All-ones mask: nobody (not even the primary) can authenticate the
  // malicious client's requests, so they are dropped at arrival and the
  // system is unharmed.
  pbft::Deployment deployment(makeBigMacScenario(20, 0xFFF, 7));
  const pbft::RunResult result = deployment.run();
  EXPECT_EQ(result.maxView, 0u);
  EXPECT_EQ(crashedReplicas(deployment), 0u);
  EXPECT_GT(result.throughputRps,
            pbft::runScenario(makeBigMacScenario(20, 0, 7)).throughputRps *
                0.8);
}

TEST(BigMacAttack, FixedViewChangeRecoversGracefully) {
  // Ablation: with the view-change crash bug fixed, the poisoned sequence
  // number is nulled by the view change and the system keeps running (in a
  // view whose primary ignores the attacker).
  pbft::DeploymentConfig config =
      makeBigMacScenario(20, bigMacMaskValidOnlyFor(0, 4), 7);
  config.pbft.viewChangeCrashBug = false;
  config.measure = sim::sec(6);
  pbft::Deployment deployment(config);
  const pbft::RunResult result = deployment.run();

  EXPECT_EQ(crashedReplicas(deployment), 0u);
  EXPECT_GE(result.maxView, 1u) << "the view change must still happen";
  EXPECT_GT(result.throughputRps,
            pbft::runScenario(makeBigMacScenario(20, 0, 7)).throughputRps *
                0.5)
      << "throughput recovers once a correct primary ignores the attacker";
  EXPECT_FALSE(result.safetyViolated);
}

TEST(SlowPrimary, SingleTimerBugYieldsOneRequestPerPeriod) {
  const pbft::RunResult result = pbft::runScenario(
      makeSlowPrimaryScenario(10, /*colluding=*/false, /*fix=*/false, 3));
  // Paper: ~0.2 req/s with the default 5 s timer (one request per period).
  EXPECT_GT(result.throughputRps, 0.05);
  EXPECT_LT(result.throughputRps, 0.5);
  EXPECT_EQ(result.maxView, 0u)
      << "the malicious primary must never get deposed (that's the bug)";
}

TEST(SlowPrimary, ColludingClientZeroesUsefulThroughput) {
  const pbft::RunResult result = pbft::runScenario(
      makeSlowPrimaryScenario(10, /*colluding=*/true, /*fix=*/false, 3));
  EXPECT_EQ(result.correctCompleted, 0u)
      << "correct clients must starve completely";
  EXPECT_GT(result.maliciousCompleted, 0u)
      << "the colluder's requests are the only ones served";
  EXPECT_EQ(result.maxView, 0u);
}

TEST(SlowPrimary, PerRequestTimersFixRestoresLiveness) {
  const pbft::RunResult result = pbft::runScenario(
      makeSlowPrimaryScenario(10, /*colluding=*/true, /*fix=*/true, 3));
  // With one timer per request the starved requests depose the primary.
  EXPECT_GE(result.maxView, 1u);
  EXPECT_GT(result.throughputRps, 10.0)
      << "after the view change a correct primary restores service";
}

}  // namespace
}  // namespace avd::fi
