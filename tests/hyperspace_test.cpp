// Unit and property tests for the hyperspace model, mutation plugins, and
// the exploration strategies' bookkeeping.
#include <gtest/gtest.h>

#include <set>

#include "avd/explorers.h"
#include "avd/hyperspace.h"
#include "avd/plugin.h"
#include "common/gray_code.h"

namespace avd::core {
namespace {

Hyperspace paperSpace() {
  Hyperspace space;
  space.add(Dimension::grayBitmask("mac_mask", 12));
  space.add(Dimension::range("correct_clients", 10, 250, 10));
  space.add(Dimension::choice("malicious_clients", {1, 2}));
  return space;
}

// --- Dimensions ---------------------------------------------------------------

TEST(Dimension, RangeEnumeratesEvenlySpacedValues) {
  const Dimension dim = Dimension::range("clients", 10, 250, 10);
  EXPECT_EQ(dim.cardinality(), 25u);
  EXPECT_EQ(dim.value(0), 10);
  EXPECT_EQ(dim.value(1), 20);
  EXPECT_EQ(dim.value(24), 250);
}

TEST(Dimension, RangeWithUnalignedHiStopsBelow) {
  const Dimension dim = Dimension::range("x", 0, 7, 3);  // 0, 3, 6
  EXPECT_EQ(dim.cardinality(), 3u);
  EXPECT_EQ(dim.value(2), 6);
}

TEST(Dimension, GrayBitmaskDecodesIndices) {
  const Dimension dim = Dimension::grayBitmask("mask", 12);
  EXPECT_EQ(dim.cardinality(), 4096u);
  EXPECT_EQ(dim.bits(), 12u);
  for (std::uint64_t i : {0ull, 1ull, 100ull, 4095ull}) {
    EXPECT_EQ(dim.value(i), static_cast<std::int64_t>(util::toGray(i)));
  }
}

TEST(Dimension, ChoiceReturnsListedValues) {
  const Dimension dim = Dimension::choice("m", {1, 2, 17});
  EXPECT_EQ(dim.cardinality(), 3u);
  EXPECT_EQ(dim.value(2), 17);
}

TEST(Dimension, InvalidSpecsThrow) {
  EXPECT_THROW(Dimension::range("bad", 5, 1), std::invalid_argument);
  EXPECT_THROW(Dimension::range("bad", 0, 5, 0), std::invalid_argument);
  EXPECT_THROW(Dimension::grayBitmask("bad", 0), std::invalid_argument);
  EXPECT_THROW(Dimension::grayBitmask("bad", 64), std::invalid_argument);
  EXPECT_THROW(Dimension::choice("bad", {}), std::invalid_argument);
}

// --- Hyperspace ----------------------------------------------------------------

TEST(HyperspaceModel, PaperSpaceHas204800Scenarios) {
  EXPECT_EQ(paperSpace().totalScenarios(), 204800u);  // 4096 * 25 * 2, §6
}

TEST(HyperspaceModel, ValidChecksEveryCoordinate) {
  const Hyperspace space = paperSpace();
  EXPECT_TRUE(space.valid({0, 0, 0}));
  EXPECT_TRUE(space.valid({4095, 24, 1}));
  EXPECT_FALSE(space.valid({4096, 0, 0}));
  EXPECT_FALSE(space.valid({0, 25, 0}));
  EXPECT_FALSE(space.valid({0, 0, 2}));
  EXPECT_FALSE(space.valid({0, 0}));  // wrong arity
}

TEST(HyperspaceModel, FlattenUnflattenRoundTrips) {
  const Hyperspace space = paperSpace();
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Point point = space.samplePoint(rng);
    EXPECT_EQ(space.unflatten(space.flatten(point)), point);
  }
  // Exhaustive over a small space.
  Hyperspace small;
  small.add(Dimension::range("a", 0, 3));
  small.add(Dimension::choice("b", {7, 8, 9}));
  std::set<std::uint64_t> linears;
  for (std::uint64_t a = 0; a < 4; ++a) {
    for (std::uint64_t b = 0; b < 3; ++b) {
      linears.insert(small.flatten({a, b}));
    }
  }
  EXPECT_EQ(linears.size(), 12u) << "flatten is a bijection";
  EXPECT_EQ(*linears.rbegin(), 11u);
}

TEST(HyperspaceModel, SamplePointIsAlwaysValid) {
  const Hyperspace space = paperSpace();
  util::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(space.valid(space.samplePoint(rng)));
  }
}

TEST(HyperspaceModel, ValueOfLooksUpByName) {
  const Hyperspace space = paperSpace();
  const Point point{util::fromGray(0xABC), 3, 1};
  EXPECT_EQ(space.valueOf(point, "mac_mask", -1), 0xABC);
  EXPECT_EQ(space.valueOf(point, "correct_clients", -1), 40);
  EXPECT_EQ(space.valueOf(point, "malicious_clients", -1), 2);
  EXPECT_EQ(space.valueOf(point, "no_such_dim", -1), -1);
}

TEST(HyperspaceModel, PointHashDistinguishesPoints) {
  // Distinct points must hash distinctly (up to negligible 64-bit
  // collisions); duplicate sampled points are deduplicated via flatten().
  const Hyperspace space = paperSpace();
  std::set<std::uint64_t> hashes;
  std::set<std::uint64_t> linears;
  util::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const Point point = space.samplePoint(rng);
    hashes.insert(space.pointHash(point));
    linears.insert(space.flatten(point));
  }
  EXPECT_EQ(hashes.size(), linears.size());
}

// --- Plugins -------------------------------------------------------------------

TEST(IndexStepPlugin, SmallDistanceStepsToAdjacentIndex) {
  const Hyperspace space = paperSpace();
  const IndexStepPlugin plugin("step", 0);
  util::Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    Point point{2000, 0, 0};
    plugin.mutate(space, point, 0.0, rng);
    const auto delta =
        static_cast<std::int64_t>(point[0]) - 2000;
    EXPECT_EQ(std::abs(delta), 1) << "distance 0 -> unit step";
    // Unit index step on a Gray dimension flips exactly one mask bit.
    EXPECT_EQ(util::hammingDistance(util::toGray(2000),
                                    util::toGray(point[0])),
              1);
  }
}

TEST(IndexStepPlugin, StaysInBoundsAtEdges) {
  const Hyperspace space = paperSpace();
  const IndexStepPlugin plugin("step", 1);
  util::Rng rng(9);
  for (double distance : {0.0, 0.3, 1.0}) {
    for (std::uint64_t start : {0ull, 24ull}) {
      for (int i = 0; i < 100; ++i) {
        Point point{0, start, 0};
        plugin.mutate(space, point, distance, rng);
        EXPECT_LT(point[1], 25u);
      }
    }
  }
}

TEST(IndexStepPlugin, LargeDistanceMovesFurtherOnAverage) {
  const Hyperspace space = paperSpace();
  const IndexStepPlugin plugin("step", 0);
  util::Rng rng(10);
  const auto averageDisplacement = [&](double distance) {
    double total = 0;
    for (int i = 0; i < 500; ++i) {
      Point point{2048, 0, 0};
      plugin.mutate(space, point, distance, rng);
      total += std::abs(static_cast<double>(point[0]) - 2048.0);
    }
    return total / 500;
  };
  EXPECT_GT(averageDisplacement(1.0), averageDisplacement(0.05) * 5);
}

TEST(ResamplePlugin, ExcludesCurrentValueWhenItFires) {
  Hyperspace space;
  space.add(Dimension::choice("m", {1, 2}));
  const ResamplePlugin plugin("resample", 0);
  util::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    Point point{0};
    plugin.mutate(space, point, 1.0, rng);  // distance 1: always resample
    EXPECT_EQ(point[0], 1u);
  }
}

TEST(BinaryMaskFlipPlugin, FlipsDistanceScaledBitCount) {
  Hyperspace space;
  space.add(Dimension::grayBitmask("mask", 12));
  const BinaryMaskFlipPlugin plugin("flip", 0);
  util::Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    Point point{util::fromGray(0x0F0)};
    plugin.mutate(space, point, 0.0, rng);
    // distance 0 -> exactly one mask-bit flip.
    EXPECT_EQ(util::hammingDistance(util::toGray(point[0]), 0x0F0), 1);
    EXPECT_LT(point[0], 4096u);
  }
}

TEST(DefaultPlugins, OnePluginPerDimensionWithMatchingKinds) {
  const Hyperspace space = paperSpace();
  const std::vector<PluginPtr> plugins = defaultPlugins(space);
  ASSERT_EQ(plugins.size(), 3u);
  EXPECT_EQ(plugins[0]->name(), "step:mac_mask");
  EXPECT_EQ(plugins[1]->name(), "step:correct_clients");
  EXPECT_EQ(plugins[2]->name(), "resample:malicious_clients");
}

// --- Explorers ------------------------------------------------------------------

class CountingExecutor final : public ScenarioExecutor {
 public:
  explicit CountingExecutor(Hyperspace space) : space_(std::move(space)) {}
  Outcome execute(const Point& point) override {
    visited.push_back(point);
    Outcome outcome;
    outcome.impact = 0.1;
    return outcome;
  }
  const Hyperspace& space() const noexcept override { return space_; }
  std::vector<Point> visited;

 private:
  Hyperspace space_;
};

TEST(ExhaustiveExplorer, VisitsEveryPointExactlyOnce) {
  Hyperspace space;
  space.add(Dimension::grayBitmask("mask", 5));
  space.add(Dimension::range("clients", 1, 3));
  ExhaustiveExplorer explorer([&space] {
    return std::make_unique<CountingExecutor>(space);
  });
  const auto results = explorer.exploreAll(4);
  ASSERT_EQ(results.size(), 96u);  // 32 * 3
  std::set<std::uint64_t> linears;
  for (const ExhaustiveResult& result : results) {
    EXPECT_TRUE(space.valid(result.point));
    linears.insert(space.flatten(result.point));
    EXPECT_DOUBLE_EQ(result.outcome.impact, 0.1);
  }
  EXPECT_EQ(linears.size(), 96u);
}

TEST(ExhaustiveExplorer, ResultsIndexedByFlattening) {
  Hyperspace space;
  space.add(Dimension::range("a", 0, 9));
  ExhaustiveExplorer explorer([&space] {
    return std::make_unique<CountingExecutor>(space);
  });
  const auto results = explorer.exploreAll(2);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(space.flatten(results[i].point), i);
  }
}

TEST(RandomExplorer, NeverRevisitsInLargeSpace) {
  CountingExecutor executor(paperSpace());
  Controller random = makeRandomExplorer(executor, 13);
  random.runTests(300);
  std::set<std::uint64_t> hashes;
  for (const Point& point : executor.visited) {
    hashes.insert(executor.space().pointHash(point));
  }
  EXPECT_EQ(hashes.size(), 300u);
}

}  // namespace
}  // namespace avd::core
