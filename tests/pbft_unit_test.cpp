// Unit tests for PBFT building blocks: messages/digests, the replica log
// and its certificates, application services, and configuration helpers.
#include <gtest/gtest.h>

#include <memory>

#include "pbft/config.h"
#include "pbft/log.h"
#include "pbft/message.h"
#include "pbft/service.h"

namespace avd::pbft {
namespace {

// --- Config -------------------------------------------------------------------

class ConfigSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ConfigSizes, QuorumArithmetic) {
  Config config;
  config.f = GetParam();
  EXPECT_EQ(config.replicaCount(), 3 * config.f + 1);
  EXPECT_EQ(config.quorum(), 2 * config.f + 1);
  // Any two quorums intersect in at least f+1 replicas.
  EXPECT_GE(2 * config.quorum(), config.replicaCount() + config.f + 1);
}

TEST_P(ConfigSizes, PrimaryRotatesRoundRobin) {
  Config config;
  config.f = GetParam();
  const std::uint32_t n = config.replicaCount();
  for (std::uint64_t view = 0; view < 3 * n; ++view) {
    EXPECT_EQ(config.primaryOf(view), view % n);
  }
}

INSTANTIATE_TEST_SUITE_P(FaultTolerance, ConfigSizes,
                         ::testing::Values(1, 2, 3, 5));

// --- Message digests -------------------------------------------------------------

TEST(Digests, RequestDigestBindsAllFields) {
  const util::Bytes op{1, 2, 3};
  const std::uint64_t base = requestDigest(1, 2, op);
  EXPECT_NE(base, requestDigest(9, 2, op)) << "client";
  EXPECT_NE(base, requestDigest(1, 9, op)) << "timestamp";
  EXPECT_NE(base, requestDigest(1, 2, util::Bytes{1, 2})) << "operation";
  EXPECT_EQ(base, requestDigest(1, 2, op)) << "deterministic";
}

TEST(Digests, BatchDigestIsOrderSensitive) {
  auto makeRequest = [](util::RequestId ts) {
    auto request = std::make_shared<RequestMessage>();
    request->client = 5;
    request->timestamp = ts;
    request->digest = requestDigest(5, ts, {});
    return request;
  };
  const RequestPtr a = makeRequest(1);
  const RequestPtr b = makeRequest(2);
  EXPECT_NE(batchDigest({a, b}), batchDigest({b, a}));
  EXPECT_NE(batchDigest({a}), batchDigest({a, b}));
  EXPECT_EQ(batchDigest({}), batchDigest({}));
  EXPECT_NE(batchDigest({}), batchDigest({a}));
}

TEST(Digests, AuthenticatorExcludedFromRequestDigest) {
  // The Big MAC surface: two requests with identical content but different
  // authenticators share a digest.
  auto request = std::make_shared<RequestMessage>();
  request->client = 3;
  request->timestamp = 7;
  request->operation = {9};
  const std::uint64_t before =
      requestDigest(request->client, request->timestamp, request->operation);
  request->auth.tags = {1, 2, 3, 4};
  EXPECT_EQ(
      requestDigest(request->client, request->timestamp, request->operation),
      before);
}

TEST(Digests, PhaseDigestSeparatesPhasesAndSenders) {
  const std::uint64_t pre =
      phaseDigest(MsgKind::kPrePrepare, 1, 2, 3, 0);
  EXPECT_NE(pre, phaseDigest(MsgKind::kPrepare, 1, 2, 3, 0));
  EXPECT_NE(pre, phaseDigest(MsgKind::kCommit, 1, 2, 3, 0));
  EXPECT_NE(pre, phaseDigest(MsgKind::kPrePrepare, 1, 2, 3, 1));
  EXPECT_NE(pre, phaseDigest(MsgKind::kPrePrepare, 2, 2, 3, 0));
}

TEST(Digests, ViewChangeDigestCoversProofs) {
  ViewChangeMessage vc;
  vc.newView = 3;
  vc.stableSeq = 10;
  vc.replica = 2;
  const std::uint64_t base = viewChangeDigest(vc);
  vc.prepared.push_back(PreparedProof{.seq = 11, .view = 2, .digest = 5,
                                      .batch = {}});
  EXPECT_NE(viewChangeDigest(vc), base);
}

// --- Log / certificates ----------------------------------------------------------

PrePreparePtr makePrePrepare(util::ViewId view, util::SeqNum seq) {
  auto prePrepare = std::make_shared<PrePrepareMessage>();
  prePrepare->view = view;
  prePrepare->seq = seq;
  prePrepare->digest = batchDigest({});
  prePrepare->replica = 0;
  return prePrepare;
}

TEST(LogEntry, PreparedNeedsPrePrepareAndTwoFMatchingPrepares) {
  LogEntry entry;
  EXPECT_FALSE(entry.prepared(1));
  entry.prePrepare = makePrePrepare(0, 1);
  entry.digest = entry.prePrepare->digest;
  EXPECT_FALSE(entry.prepared(1));
  entry.prepares[1] = entry.digest;
  EXPECT_FALSE(entry.prepared(1)) << "one matching prepare is not 2f";
  entry.prepares[2] = entry.digest + 1;  // mismatched digest
  EXPECT_FALSE(entry.prepared(1));
  entry.prepares[3] = entry.digest;
  EXPECT_TRUE(entry.prepared(1));
}

TEST(LogEntry, CommittedNeedsPreparedPlusQuorumCommits) {
  LogEntry entry;
  entry.prePrepare = makePrePrepare(0, 1);
  entry.digest = entry.prePrepare->digest;
  entry.prepares[1] = entry.digest;
  entry.prepares[2] = entry.digest;
  entry.commits[0] = entry.digest;
  entry.commits[1] = entry.digest;
  EXPECT_FALSE(entry.committed(1)) << "2 commits < 2f+1";
  entry.commits[2] = entry.digest;
  EXPECT_TRUE(entry.committed(1));
}

TEST(LogEntry, MismatchedVotesNeverCount) {
  LogEntry entry;
  entry.prePrepare = makePrePrepare(0, 1);
  entry.digest = 42;
  for (util::NodeId r = 1; r < 10; ++r) entry.prepares[r] = 41;
  EXPECT_EQ(entry.matchingPrepares(), 0u);
  EXPECT_FALSE(entry.prepared(1));
}

TEST(ReplicaLog, TruncateDropsUpToStable) {
  ReplicaLog log;
  for (util::SeqNum seq = 1; seq <= 10; ++seq) log.at(seq);
  log.truncateBelow(7);
  EXPECT_EQ(log.find(7), nullptr);
  EXPECT_EQ(log.find(1), nullptr);
  EXPECT_NE(log.find(8), nullptr);
  EXPECT_EQ(log.size(), 3u);
}

TEST(ReplicaLog, PreparedProofsSkipStableAndUnprepared) {
  ReplicaLog log;
  for (util::SeqNum seq = 1; seq <= 4; ++seq) {
    LogEntry& entry = log.at(seq);
    entry.prePrepare = makePrePrepare(0, seq);
    entry.view = 0;
    entry.digest = entry.prePrepare->digest;
    if (seq != 3) {  // leave 3 unprepared
      entry.prepares[1] = entry.digest;
      entry.prepares[2] = entry.digest;
      entry.recordPrepared();
    }
  }
  const auto proofs = log.preparedProofsAbove(1, 1);
  ASSERT_EQ(proofs.size(), 2u);
  EXPECT_EQ(proofs[0].seq, 2u);
  EXPECT_EQ(proofs[1].seq, 4u);
}

TEST(ReplicaLog, EverPreparedMemorySurvivesNewViewReset) {
  // The P-set property the safety fix relies on: the highest-view prepared
  // certificate survives the live-certificate wipe at view installation.
  ReplicaLog log;
  LogEntry& entry = log.at(5);
  entry.prePrepare = makePrePrepare(2, 5);
  entry.view = 2;
  entry.digest = entry.prePrepare->digest;
  entry.prepares[1] = entry.digest;
  entry.prepares[2] = entry.digest;
  entry.recordPrepared();

  log.resetUnexecutedForNewView();
  EXPECT_EQ(log.find(5)->prePrepare, nullptr) << "live cert wiped";
  const auto proofs = log.preparedProofsAbove(0, 1);
  ASSERT_EQ(proofs.size(), 1u) << "prepared memory kept";
  EXPECT_EQ(proofs[0].view, 2u);

  // A later, higher-view certificate supersedes; a stale lower-view one
  // must not.
  LogEntry& again = log.at(5);
  again.prePrepare = makePrePrepare(7, 5);
  again.view = 7;
  again.digest = again.prePrepare->digest;
  again.recordPrepared();
  EXPECT_EQ(log.preparedProofsAbove(0, 1)[0].view, 7u);
  again.view = 3;
  again.recordPrepared();
  EXPECT_EQ(log.preparedProofsAbove(0, 1)[0].view, 7u);
}

TEST(ReplicaLog, ResetForNewViewPreservesExecuted) {
  ReplicaLog log;
  LogEntry& executed = log.at(1);
  executed.prePrepare = makePrePrepare(0, 1);
  executed.digest = 5;
  executed.executed = true;
  LogEntry& pending = log.at(2);
  pending.prePrepare = makePrePrepare(0, 2);
  pending.digest = 6;
  pending.prepares[1] = 6;
  pending.commitSent = true;

  log.resetUnexecutedForNewView();
  EXPECT_NE(log.find(1)->prePrepare, nullptr);
  EXPECT_EQ(log.find(1)->digest, 5u);
  EXPECT_EQ(log.find(2)->prePrepare, nullptr);
  EXPECT_TRUE(log.find(2)->prepares.empty());
  EXPECT_FALSE(log.find(2)->commitSent);
}

// --- Services -------------------------------------------------------------------

TEST(CounterService, IncrementsByOperationByte) {
  CounterService service;
  service.execute(1, {5});
  service.execute(2, {});
  util::Bytes result = service.execute(1, {10});
  EXPECT_EQ(service.value(), 16u);
  util::ByteReader reader(result);
  EXPECT_EQ(reader.u64(), 16u);
}

TEST(CounterService, SnapshotRestoreRoundTrip) {
  CounterService service;
  service.execute(1, {42});
  const std::uint64_t digest = service.stateDigest();
  const util::Bytes snapshot = service.snapshot();

  CounterService other;
  other.restore(snapshot);
  EXPECT_EQ(other.value(), 42u);
  EXPECT_EQ(other.stateDigest(), digest);
}

TEST(KvService, PutGetDelSemantics) {
  KvService service;
  const auto get = [&service](const std::string& key) {
    // Keep the result alive for the duration of the read (ByteReader views
    // the buffer, it does not own it).
    const util::Bytes result = service.execute(1, KvService::encodeGet(key));
    util::ByteReader reader(result);
    return reader.str().value_or("<decode error>");
  };
  service.execute(1, KvService::encodePut("k", "v1"));
  EXPECT_EQ(get("k"), "v1");
  service.execute(1, KvService::encodePut("k", "v2"));
  EXPECT_EQ(get("k"), "v2");
  service.execute(1, KvService::encodeDel("k"));
  EXPECT_EQ(get("k"), "");
  EXPECT_EQ(service.size(), 0u);
}

TEST(KvService, MalformedOperationsAreSafeNoOps) {
  KvService service;
  EXPECT_TRUE(service.execute(1, {}).empty());
  EXPECT_TRUE(service.execute(1, {99}).empty());     // unknown opcode
  EXPECT_TRUE(service.execute(1, {1, 200}).empty()); // truncated PUT
  EXPECT_EQ(service.size(), 0u);
}

TEST(KvService, DigestTracksContentNotHistory) {
  KvService a;
  KvService b;
  a.execute(1, KvService::encodePut("x", "1"));
  a.execute(1, KvService::encodePut("y", "2"));
  b.execute(2, KvService::encodePut("y", "2"));
  b.execute(2, KvService::encodePut("x", "1"));
  EXPECT_EQ(a.stateDigest(), b.stateDigest());
  b.execute(2, KvService::encodeDel("x"));
  EXPECT_NE(a.stateDigest(), b.stateDigest());
}

TEST(KvService, SnapshotRestoreRoundTrip) {
  KvService service;
  for (int i = 0; i < 20; ++i) {
    service.execute(1, KvService::encodePut("key" + std::to_string(i),
                                            "value" + std::to_string(i)));
  }
  KvService other;
  other.restore(service.snapshot());
  EXPECT_EQ(other.size(), 20u);
  EXPECT_EQ(other.stateDigest(), service.stateDigest());
}

}  // namespace
}  // namespace avd::pbft
