// Controller (Algorithm 1) unit tests on a synthetic landscape, plus an
// end-to-end exploration test against the real PBFT executor.
#include <gtest/gtest.h>

#include <cmath>

#include "avd/controller.h"
#include "avd/explorers.h"
#include "avd/pbft_executor.h"
#include "common/gray_code.h"

namespace avd::core {
namespace {

/// Synthetic landscape with the kind of structure Figure 3 exhibits: a
/// narrow high-impact ridge (a "vertical line" in the hyperspace) with a
/// gradient along it. Random shots rarely land on the ridge; feedback-
/// guided exploration exploits a first lucky hit by climbing along it —
/// "there is inherent structure in the explored hyperspace" (§3).
class HillExecutor final : public ScenarioExecutor {
 public:
  HillExecutor() {
    space_.add(Dimension::range("x", 0, 99));
    space_.add(Dimension::range("y", 0, 99));
  }

  Outcome execute(const Point& point) override {
    ++executed_;
    const double dx = std::abs(static_cast<double>(point[0]) - 70.0);
    const double dy = std::abs(static_cast<double>(point[1]) - 30.0);
    Outcome outcome;
    const double ridge = std::max(0.0, 1.0 - dx / 10.0);  // narrow in x
    const double along = 1.0 - 0.6 * dy / 99.0;           // gentle in y
    outcome.impact = ridge * along;
    outcome.throughputRps = 1000.0 * (1.0 - outcome.impact);
    return outcome;
  }

  const Hyperspace& space() const noexcept override { return space_; }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  Hyperspace space_;
  std::uint64_t executed_ = 0;
};

TEST(Controller, HistoryGrowsAndNeverRepeatsScenarios) {
  HillExecutor executor;
  Controller controller(executor, defaultPlugins(executor.space()));
  controller.runTests(200);
  ASSERT_EQ(controller.history().size(), 200u);

  std::set<std::uint64_t> hashes;
  for (const TestRecord& record : controller.history()) {
    hashes.insert(executor.space().pointHash(record.point));
  }
  // Ω-based dedup: duplicates only possible via the exhaustion fallback,
  // which a 10,000-point space never triggers in 200 tests.
  EXPECT_EQ(hashes.size(), 200u);
}

TEST(Controller, BestImpactIsMonotoneInHistory) {
  HillExecutor executor;
  Controller controller(executor, defaultPlugins(executor.space()));
  controller.runTests(150);
  double previous = 0.0;
  for (const TestRecord& record : controller.history()) {
    EXPECT_GE(record.bestImpactSoFar, previous);
    EXPECT_GE(record.bestImpactSoFar, record.outcome.impact - 1e-12);
    previous = record.bestImpactSoFar;
  }
  EXPECT_DOUBLE_EQ(previous, controller.maxImpact());
}

TEST(Controller, FeedbackBeatsRandomOnStructuredLandscape) {
  // Aggregate area under the best-impact-so-far curve across seeds (the
  // Figure 2 comparison in miniature): the fitness-guided explorer must
  // accumulate strictly more than random exploration. Deterministic: fixed
  // seeds, fixed algorithm.
  double guidedArea = 0;
  double randomArea = 0;
  constexpr int kSeeds = 12;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    HillExecutor guidedExecutor;
    Controller guided(guidedExecutor, defaultPlugins(guidedExecutor.space()),
                      ControllerOptions{}, static_cast<std::uint64_t>(seed));
    guided.runTests(120);

    HillExecutor randomExecutor;
    Controller random = makeRandomExplorer(randomExecutor,
                                           static_cast<std::uint64_t>(seed));
    random.runTests(120);

    for (std::size_t i = 0; i < 120; ++i) {
      guidedArea += guided.history()[i].bestImpactSoFar;
      randomArea += random.history()[i].bestImpactSoFar;
    }
  }
  EXPECT_GT(guidedArea, randomArea * 1.02)
      << "guided exploration should dominate the best-impact curve";
}

TEST(Controller, PluginGainsAccumulate) {
  HillExecutor executor;
  Controller controller(executor, defaultPlugins(executor.space()));
  controller.runTests(100);
  std::uint64_t totalChosen = 0;
  for (const PluginStats& stats : controller.pluginStats()) {
    totalChosen += stats.timesChosen;
  }
  // Everything after the random opening is attributed to some plugin.
  EXPECT_GE(totalChosen, 100u - ControllerOptions{}.initialRandomTests - 10);
}

TEST(Controller, TestsToReachFindsFirstCrossing) {
  HillExecutor executor;
  Controller controller(executor, defaultPlugins(executor.space()));
  controller.runTests(200);
  const auto crossing = controller.testsToReach(0.8);
  ASSERT_TRUE(crossing.has_value());
  EXPECT_GE(controller.history()[*crossing - 1].outcome.impact, 0.8);
  for (std::size_t i = 0; i + 1 < *crossing; ++i) {
    EXPECT_LT(controller.history()[i].outcome.impact, 0.8);
  }
}

TEST(Controller, TestsToReachEdgeCases) {
  HillExecutor executor;
  Controller controller(executor, defaultPlugins(executor.space()));
  // Empty history: no test ever crossed anything.
  EXPECT_FALSE(controller.testsToReach(0.0).has_value());

  controller.runTests(50);
  // Threshold 0 is reached by the very first test (impact >= 0 always).
  const auto zero = controller.testsToReach(0.0);
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(*zero, 1u);
  // A threshold above the observed maximum was never reached.
  EXPECT_FALSE(
      controller.testsToReach(controller.maxImpact() + 0.01).has_value());
  // The maximum itself was reached, at or before the last test.
  const auto atMax = controller.testsToReach(controller.maxImpact());
  ASSERT_TRUE(atMax.has_value());
  EXPECT_LE(*atMax, controller.history().size());
}

TEST(Controller, AblationFlagDisablesPluginFitnessWeighting) {
  // With pluginFitnessWeighting off, plugin selection is uniform: on a
  // 2-plugin space both plugins must be chosen in roughly equal measure.
  // (With weighting on, the split is free to skew toward the plugin whose
  // mutations pay off; we only pin the ablation's uniformity.)
  ControllerOptions ablated;
  ablated.pluginFitnessWeighting = false;
  HillExecutor executor;
  Controller controller(executor, defaultPlugins(executor.space()), ablated,
                        42);
  controller.runTests(300);

  const auto& stats = controller.pluginStats();
  ASSERT_EQ(stats.size(), 2u);
  std::uint64_t total = 0;
  for (const PluginStats& plugin : stats) {
    total += plugin.timesChosen;
    EXPECT_GT(plugin.timesChosen, 0u);
  }
  EXPECT_GE(total, 300u - ablated.initialRandomTests - 10);
  for (const PluginStats& plugin : stats) {
    EXPECT_GT(plugin.timesChosen, total / 4)
        << "uniform sampling cannot starve a plugin";
  }
}

TEST(Controller, BatchAcquireReportMatchesRunTests) {
  // The campaign engine's contract: acquire -> execute -> report in a loop
  // is exactly runTests. (The campaign's own tests build on this; keeping
  // the bit-identity assertion next to the controller pins the API itself.)
  HillExecutor reference;
  Controller expected(reference, defaultPlugins(reference.space()),
                      ControllerOptions{}, 3);
  expected.runTests(60);

  HillExecutor executor;
  Controller actual(executor, defaultPlugins(executor.space()),
                    ControllerOptions{}, 3);
  for (int i = 0; i < 60; ++i) {
    GeneratedScenario scenario = actual.acquireScenario();
    EXPECT_EQ(actual.inFlight(), 1u);
    const Outcome outcome = executor.execute(scenario.point);
    actual.reportOutcome(std::move(scenario), outcome);
  }
  EXPECT_EQ(actual.inFlight(), 0u);
  ASSERT_EQ(actual.history().size(), expected.history().size());
  for (std::size_t i = 0; i < expected.history().size(); ++i) {
    EXPECT_EQ(actual.history()[i].point, expected.history()[i].point);
    EXPECT_EQ(actual.history()[i].outcome.impact,
              expected.history()[i].outcome.impact);
    EXPECT_EQ(actual.history()[i].generatedBy,
              expected.history()[i].generatedBy);
  }
}

TEST(PbftExecutor, BaselineIsCachedAndPositive) {
  PbftExecutorOptions options;
  options.measure = sim::msec(1000);
  PbftAttackExecutor executor(makeFigure3Subspace(), options);
  const double baseline = executor.baselineFor(10, 0);
  EXPECT_GT(baseline, 500.0);
  EXPECT_DOUBLE_EQ(executor.baselineFor(10, 0), baseline);
}

TEST(PbftExecutor, MaskZeroHasNearZeroImpact) {
  PbftExecutorOptions options;
  options.measure = sim::msec(1000);
  PbftAttackExecutor executor(makeFigure3Subspace(), options);
  const Outcome outcome = executor.execute(Point{0, 0});  // mask 0, 10 clients
  EXPECT_LT(outcome.impact, 0.15);
  EXPECT_FALSE(outcome.safetyViolated);
}

TEST(PbftExecutor, BigMacCrashMaskPointHasHighImpact) {
  PbftExecutorOptions options;
  options.measure = sim::msec(1500);
  PbftAttackExecutor executor(makePaperMacHyperspace(), options);
  // Index whose Gray encoding is the full Big MAC mask (valid only for
  // replica 0 => view change + crash of the quorum).
  const std::uint64_t index = util::fromGray(0xEEE);
  const Outcome outcome = executor.execute(Point{index, 1, 0});
  EXPECT_GT(outcome.impact, 0.7);
  EXPECT_GT(outcome.viewChanges, 0u);
}

TEST(PbftExecutor, ExplorationDiscoversDamagingScenario) {
  // End-to-end: AVD over the real PBFT deployment finds a high-impact MAC
  // attack within a modest budget ("a few tens of iterations", §6).
  PbftExecutorOptions options;
  options.measure = sim::msec(1200);
  options.defaultCorrectClients = 10;
  Hyperspace space;
  space.add(Dimension::grayBitmask("mac_mask", 12));
  space.add(Dimension::range("correct_clients", 10, 30, 10));
  PbftAttackExecutor executor(std::move(space), options);

  Controller controller(executor, defaultPlugins(executor.space()),
                        ControllerOptions{}, 11);
  controller.runTests(60);
  EXPECT_GE(controller.maxImpact(), 0.5)
      << "AVD should find a damaging MAC corruption pattern";
}

}  // namespace
}  // namespace avd::core
