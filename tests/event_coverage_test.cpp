// Conformance over the generated protocol-event taxonomy.
//
// src/avd/gen/protocol_events.h is extracted statically by avd_lint; this
// suite proves the taxonomy is *observable*: a seeded set of representative
// fault scenarios — primary churn, an undefended and a defended request
// flood, and the Big MAC authenticator attack — must emit every taxonomy
// entry at least once through the runtime counters eventCounts() reads.
// An entry no scenario can reach is dead weight in the coverage map; a
// counter that stopped moving is rotted instrumentation (the dynamic twin
// of lint rule R14).
#include <gtest/gtest.h>

#include <memory>

#include "avd/event_coverage.h"
#include "faultinject/behaviors.h"
#include "faultinject/churn.h"
#include "faultinject/flood.h"
#include "pbft/deployment.h"

namespace avd::core {
namespace {

/// Primary churn over a checkpointing deployment: crash-rejoin, view
/// change, checkpoint, state transfer, park/unpark, and the status/sync
/// rejoin traffic.
pbft::RunResult runPrimaryChurn() {
  pbft::DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(400);
  config.pbft.viewChangeTimeout = sim::msec(400);
  config.pbft.checkpointInterval = 16;
  config.pbft.watermarkWindow = 64;
  config.clientRetx = sim::msec(100);
  config.correctClients = 8;
  config.warmup = sim::msec(400);
  config.measure = sim::sec(4);
  config.seed = 71;

  pbft::Deployment deployment(config);
  fi::ChurnFault::Options churn;
  churn.target = 0;  // the primary: forces a view change and a catch-up
  churn.firstCrash = sim::msec(900);
  // Long enough for the surviving replicas to advance their stable
  // checkpoint past the crashed replica's log, so the rejoin needs a state
  // transfer rather than ordinary replay.
  churn.downtime = sim::sec(2);
  auto fault = std::make_shared<fi::ChurnFault>(
      &deployment.simulator(), &deployment.network(), churn);
  fault->install();
  return deployment.run();
}

/// Request spam against a bounded receive path. Undefended: the shared
/// ingress queue overflows. Defended: the admission quotas shed the flood.
pbft::RunResult runFlood(bool defended) {
  pbft::DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(400);
  config.pbft.viewChangeTimeout = sim::msec(400);
  config.correctClients = 10;
  config.clientRetx = sim::msec(100);
  config.warmup = sim::msec(300);
  config.measure = sim::msec(1500);
  config.seed = 17;
  config.link = sim::LinkModel{sim::usec(500), sim::usec(100)};
  config.link.ingressCapacity = 64;
  config.link.ingressByteBudget = 32 * 1024;
  config.link.ingressServiceTime = sim::usec(100);
  if (defended) fi::enableFloodDefenses(config.pbft);

  pbft::Deployment deployment(config);
  fi::FloodOptions options;
  options.kind = fi::FloodKind::kRequestSpam;
  options.interval = sim::sec(1) / 16000;
  fi::FloodClient flood(config.pbft.replicaCount() + config.totalClients(),
                        config.pbft, &deployment.keychain(), options);
  deployment.network().registerNode(&flood);
  flood.install();
  return deployment.run();
}

/// The Big MAC attack with the rotating mask: every retransmission round
/// authenticates at one more replica, so pre-prepares park and resolve
/// without a view change.
pbft::RunResult runBigMac() {
  return pbft::runScenario(
      fi::makeBigMacScenario(20, fi::rotatingBigMacMask(), 7));
}

TEST(EventCoverage, SeededScenarioSweepEmitsEveryTaxonomyEntry) {
  EventCounts total{};
  total = addCounts(total, eventCounts(runPrimaryChurn()));
  total = addCounts(total, eventCounts(runFlood(/*defended=*/false)));
  total = addCounts(total, eventCounts(runFlood(/*defended=*/true)));
  total = addCounts(total, eventCounts(runBigMac()));

  for (const gen::ProtocolEventInfo& info : gen::kProtocolEvents) {
    EXPECT_GT(total[static_cast<std::size_t>(info.event)], 0u)
        << "taxonomy entry '" << info.name << "' (counter " << info.counter
        << ") was never emitted by the scenario sweep";
  }
}

TEST(EventCoverage, MessageCountsMatchTheDeliveryCounters) {
  const pbft::RunResult result = runPrimaryChurn();
  const EventCounts counts = eventCounts(result);

  std::uint64_t messageTotal = 0;
  for (const gen::ProtocolEventInfo& info : gen::kProtocolEvents) {
    if (info.kind == "message") {
      messageTotal += counts[static_cast<std::size_t>(info.event)];
    }
  }
  std::uint64_t delivered = 0;
  for (const auto& [kind, count] : result.network.deliveredByKind) {
    delivered += count;
  }
  EXPECT_EQ(messageTotal, delivered)
      << "every delivered message maps onto exactly one taxonomy entry";
  EXPECT_EQ(delivered, result.network.delivered);
}

TEST(EventCoverage, TransitionCountsMirrorTheRunResultFields) {
  const pbft::RunResult result = runPrimaryChurn();
  const EventCounts counts = eventCounts(result);

  using gen::ProtocolEvent;
  EXPECT_EQ(counts[static_cast<std::size_t>(ProtocolEvent::kViewChange)],
            result.viewChangesInitiated);
  EXPECT_EQ(counts[static_cast<std::size_t>(ProtocolEvent::kCheckpoint)],
            result.checkpointsTaken);
  EXPECT_EQ(counts[static_cast<std::size_t>(ProtocolEvent::kStateTransfer)],
            result.stateTransfers);
  EXPECT_EQ(counts[static_cast<std::size_t>(ProtocolEvent::kCrashRejoin)],
            result.restarts);
  EXPECT_EQ(counts[static_cast<std::size_t>(ProtocolEvent::kIngressOverflow)],
            result.network.droppedQueueOverflow);
}

// Regression for the R14 true positive this PR fixed: a rejoining replica
// that adopts a quorum-corroborated snapshot must count the completed
// state transfer (previously only the in-flight flag was cleared, so the
// transition was invisible to coverage).
TEST(EventCoverage, CompletedStateTransfersAreCounted) {
  const pbft::RunResult result = runPrimaryChurn();
  EXPECT_GT(result.stateTransfers, 0u)
      << "primary churn past a stable checkpoint must complete a state "
         "transfer";
  EXPECT_GT(result.checkpointsTaken, 0u);
  EXPECT_GT(result.restarts, 0u);
}

}  // namespace
}  // namespace avd::core
