// Protocol-level integration tests: batching, reply cache, larger f,
// repeated view changes, loss recovery (status/sync), state transfer after
// a long partition, malicious-replica behaviours, and a seed-swept safety
// property under adversarial network conditions.
#include <gtest/gtest.h>

#include <memory>

#include "faultinject/network_faults.h"
#include "faultinject/reorder.h"
#include "pbft/deployment.h"

namespace avd::pbft {
namespace {

DeploymentConfig baseConfig() {
  DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(500);
  config.pbft.viewChangeTimeout = sim::msec(500);
  config.correctClients = 8;
  config.warmup = sim::msec(300);
  config.measure = sim::sec(2);
  config.seed = 1234;
  return config;
}

std::uint64_t totalBatches(Deployment& deployment) {
  std::uint64_t batches = 0;
  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    batches += deployment.replica(r).stats().batchesOrdered;
  }
  return batches;
}

TEST(Batching, PrimaryAggregatesRequests) {
  DeploymentConfig config = baseConfig();
  config.correctClients = 30;
  config.pbft.maxBatch = 64;
  Deployment deployment(config);
  const RunResult result = deployment.run();
  const std::uint64_t executed =
      deployment.replica(0).stats().requestsExecuted;
  EXPECT_GT(executed, totalBatches(deployment) * 2)
      << "with 30 closed-loop clients, average batch size must exceed 2";
  EXPECT_FALSE(result.safetyViolated);
}

TEST(Batching, MaxBatchOneDegeneratesToPerRequestOrdering) {
  DeploymentConfig config = baseConfig();
  config.pbft.maxBatch = 1;
  config.measure = sim::sec(1);
  Deployment deployment(config);
  deployment.run();
  const std::uint64_t ordered = deployment.replica(0).stats().batchesOrdered;
  const std::uint64_t executed = deployment.replica(0).executionTrace().size();
  EXPECT_GE(ordered, executed);
  EXPECT_LE(ordered - executed, 16u) << "only in-flight batches may differ";
  EXPECT_EQ(deployment.replica(0).stats().requestsExecuted, executed)
      << "every ordered batch holds exactly one request";
}

TEST(ReplyCache, RetransmittedExecutedRequestsGetCachedReplies) {
  DeploymentConfig config = baseConfig();
  config.correctClients = 3;
  Deployment deployment(config);

  // Cut all replica->client reply traffic for a while: clients will
  // retransmit already-executed requests and replicas must answer from the
  // last-reply cache rather than re-executing.
  std::set<util::NodeId> replicas;
  std::set<util::NodeId> clients;
  for (util::NodeId r = 0; r < deployment.replicaCount(); ++r) {
    replicas.insert(r);
  }
  for (std::uint32_t i = 0; i < config.correctClients; ++i) {
    clients.insert(deployment.correctClientId(i));
  }
  auto partition = std::make_shared<fi::PartitionFault>(replicas, clients);
  deployment.runFor(sim::msec(300));  // let some requests execute first
  deployment.network().addFault(partition);
  deployment.runFor(sim::msec(600));  // requests execute; replies vanish
  partition->heal();
  deployment.runFor(sim::sec(1));

  std::uint64_t resent = 0;
  std::uint64_t executed = 0;
  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    resent += deployment.replica(r).stats().repliesResent;
    executed += deployment.replica(r).stats().requestsExecuted;
  }
  EXPECT_GT(resent, 0u) << "cached replies must serve retransmissions";
  EXPECT_FALSE(deployment.collect().safetyViolated);
  EXPECT_GT(executed, 0u);
}

class LargerF : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LargerF, ToleratesFCrashedReplicas) {
  DeploymentConfig config = baseConfig();
  config.pbft.f = GetParam();
  Deployment deployment(config);
  deployment.runFor(sim::msec(300));
  // Crash f backups (not the primary): the system must keep going without
  // any view change.
  for (std::uint32_t i = 0; i < config.pbft.f; ++i) {
    deployment.replica(deployment.replicaCount() - 1 - i).setAlive(false);
  }
  deployment.runFor(sim::sec(2));
  const RunResult result = deployment.collect();
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_EQ(deployment.replica(0).view(), 0u);
  EXPECT_GT(result.correctCompleted, 100u);
}

INSTANTIATE_TEST_SUITE_P(FaultBudget, LargerF, ::testing::Values(1, 2, 3));

TEST(ViewChange, SurvivesTwoConsecutivePrimaryFailures) {
  // Two crashes need f = 2 (seven replicas) to stay within the fault
  // budget; view changes require 2f+1 live voters.
  DeploymentConfig config = baseConfig();
  config.pbft.f = 2;
  Deployment deployment(config);
  deployment.runFor(sim::msec(300));
  deployment.replica(0).setAlive(false);
  deployment.runFor(sim::sec(3));
  deployment.replica(1).setAlive(false);
  deployment.runFor(sim::sec(4));

  for (std::uint32_t r = 2; r < deployment.replicaCount(); ++r) {
    EXPECT_GE(deployment.replica(r).view(), 2u) << "replica " << r;
    EXPECT_FALSE(deployment.replica(r).inViewChange());
  }
  std::uint64_t late = 0;
  for (std::uint32_t i = 0; i < config.correctClients; ++i) {
    late += deployment.correctClient(i).completed();
  }
  EXPECT_GT(late, 0u);
  EXPECT_FALSE(deployment.collect().safetyViolated);
}

TEST(LossRecovery, SyncSubprotocolHealsDroppedAgreementMessages) {
  DeploymentConfig config = baseConfig();
  config.measure = sim::sec(3);
  Deployment deployment(config);
  // 10% of ALL traffic dropped: without the status/sync subprotocol the
  // deployment wedges; with it every replica keeps converging.
  deployment.network().addFault(std::make_shared<fi::DropFault>(0.10));
  const RunResult result = deployment.run();

  EXPECT_FALSE(result.safetyViolated);
  EXPECT_GT(result.correctCompleted, 10u);
  std::uint64_t synced = 0;
  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    synced += deployment.replica(r).stats().sequencesSynced;
  }
  EXPECT_GT(synced, 0u) << "recovery must have actually been exercised";
}

TEST(LossRecovery, ReplicasConvergeAfterLossStops) {
  DeploymentConfig config = baseConfig();
  Deployment deployment(config);
  auto drop = std::make_shared<fi::DropFault>(0.15);
  deployment.network().addFault(drop);
  deployment.runFor(sim::sec(2));
  deployment.network().clearFaults();
  deployment.runFor(sim::sec(2));

  const util::SeqNum reference = deployment.replica(0).lastExecuted();
  EXPECT_GT(reference, 0u);
  for (std::uint32_t r = 1; r < deployment.replicaCount(); ++r) {
    EXPECT_NEAR(static_cast<double>(deployment.replica(r).lastExecuted()),
                static_cast<double>(reference), 64.0)
        << "replica " << r;
  }
}

TEST(StateTransfer, PartitionedReplicaCatchesUpViaCheckpoint) {
  DeploymentConfig config = baseConfig();
  config.pbft.checkpointInterval = 16;
  config.pbft.watermarkWindow = 64;
  config.correctClients = 10;
  Deployment deployment(config);

  // Isolate replica 3 long enough that the others GC the log past its
  // horizon; after healing it must catch up through state transfer (the
  // sync subprotocol cannot serve GC'd sequences).
  std::set<util::NodeId> everyoneElse;
  for (util::NodeId id = 0;
       id < deployment.replicaCount() + config.correctClients; ++id) {
    if (id != 3) everyoneElse.insert(id);
  }
  auto partition =
      std::make_shared<fi::PartitionFault>(std::set<util::NodeId>{3},
                                           everyoneElse);
  deployment.network().addFault(partition);
  deployment.runFor(sim::sec(2));
  const util::SeqNum othersProgress = deployment.replica(0).lastExecuted();
  ASSERT_GT(othersProgress, 128u) << "need enough progress to force GC";
  ASSERT_EQ(deployment.replica(3).lastExecuted(), 0u);

  partition->heal();
  deployment.runFor(sim::sec(3));
  EXPECT_GT(deployment.replica(3).lastExecuted(), othersProgress / 2)
      << "replica 3 must adopt a recent checkpoint and resume";
  EXPECT_FALSE(deployment.collect().safetyViolated);
}

TEST(MaliciousReplica, SilentPreparesAreToleratedAtFOne) {
  DeploymentConfig config = baseConfig();
  ReplicaBehavior silent;
  silent.silentPrepares = true;
  silent.silentCommits = true;
  config.replicaBehaviors[3] = silent;
  const RunResult result = runScenario(config);
  EXPECT_GT(result.throughputRps, 100.0)
      << "one silent replica is within the fault budget";
  EXPECT_EQ(result.maxView, 0u);
  EXPECT_FALSE(result.safetyViolated);
}

TEST(MaliciousReplica, LoneSpuriousViewChangerIsIgnored) {
  DeploymentConfig config = baseConfig();
  ReplicaBehavior spurious;
  spurious.spuriousViewChangeInterval = sim::msec(200);
  config.replicaBehaviors[2] = spurious;
  Deployment deployment(config);
  const RunResult result = deployment.run();
  // f+1 = 2 votes are needed to co-opt correct replicas: one liar changes
  // nothing.
  EXPECT_EQ(deployment.replica(0).view(), 0u);
  EXPECT_EQ(deployment.replica(1).view(), 0u);
  EXPECT_GT(result.throughputRps, 100.0);
}

/// Safety property sweep: under random drops + reordering (and the crash
/// bug disabled so view changes complete), no two replicas may ever execute
/// different batches at the same sequence number, across seeds.
class SafetyUnderChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafetyUnderChaos, NoDivergentExecution) {
  DeploymentConfig config = baseConfig();
  config.seed = GetParam();
  config.pbft.viewChangeCrashBug = false;
  config.measure = sim::sec(3);
  Deployment deployment(config);
  deployment.network().addFault(std::make_shared<fi::DropFault>(0.08));
  deployment.network().addFault(
      std::make_shared<fi::ReorderFault>(0.3, sim::msec(15)));
  const RunResult result = deployment.run();
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_GT(result.correctCompleted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetyUnderChaos,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(Determinism, IdenticalSeedsProduceIdenticalRuns) {
  const RunResult a = runScenario(baseConfig());
  const RunResult b = runScenario(baseConfig());
  EXPECT_EQ(a.correctCompleted, b.correctCompleted);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_DOUBLE_EQ(a.avgLatencySec, b.avgLatencySec);

  DeploymentConfig different = baseConfig();
  different.seed = 4321;
  const RunResult c = runScenario(different);
  EXPECT_NE(a.eventsExecuted, c.eventsExecuted);
}

TEST(Checkpoints, WatermarkNeverExceedsWindowAheadOfStable) {
  DeploymentConfig config = baseConfig();
  config.pbft.checkpointInterval = 16;
  config.pbft.watermarkWindow = 64;
  config.correctClients = 20;
  Deployment deployment(config);
  deployment.run();
  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    const Replica& replica = deployment.replica(r);
    EXPECT_LE(replica.lastExecuted(),
              replica.stableCheckpoint() + config.pbft.watermarkWindow);
    EXPECT_GT(replica.stableCheckpoint(), 0u);
  }
}

}  // namespace
}  // namespace avd::pbft
