// Twins fault tool and safety-violation oracle tests.
//
// Three layers: the Network's twin routing primitive (instance pinning,
// cross-side suppression, sender-side resolution of twinned receivers),
// the deployment-level safety semantics (within the f bound — up to f
// twinned identities, including under churn, view changes, and partition
// heal — the oracle must stay silent; beyond it a seeded scenario
// deterministically produces conflicting commit certificates), and the
// AVD surface (twins hyperspace points reach the executor and safety
// outcomes lead the dedup report).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "avd/pbft_executor.h"
#include "campaign/dedup.h"
#include "campaign/journal.h"
#include "faultinject/churn.h"
#include "faultinject/network_faults.h"
#include "faultinject/twins.h"
#include "pbft/deployment.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace avd {
namespace {

// --- Network twin routing ----------------------------------------------------

class ProbeNode final : public sim::Node {
 public:
  explicit ProbeNode(util::NodeId id) : Node(id) {}

  void receive(util::NodeId from, const sim::MessagePtr&) override {
    received.push_back(from);
  }

  std::vector<util::NodeId> received;

  using Node::send;
};

class Ping final : public sim::Message {
 public:
  std::uint32_t kind() const noexcept override { return 0xF00D; }
};

struct TwinNetFixture : ::testing::Test {
  TwinNetFixture()
      : simulator(1), network(&simulator, sim::LinkModel{sim::msec(1), 0}) {
    for (util::NodeId id = 0; id < 3; ++id) {
      nodes.push_back(std::make_unique<ProbeNode>(id));
      network.registerNode(nodes.back().get());
    }
    twin = std::make_unique<ProbeNode>(0);
    network.registerTwin(twin.get());
    // Node 1 lives on side 1 with the twin; node 2 stays on side 0.
    network.setTwinRouter(
        [](util::NodeId node, sim::Time) { return node == 1 ? 1 : 0; });
  }

  sim::Simulator simulator;
  sim::Network network;
  std::vector<std::unique_ptr<ProbeNode>> nodes;
  std::unique_ptr<ProbeNode> twin;
};

TEST_F(TwinNetFixture, RegisterTwinTracksInstances) {
  EXPECT_TRUE(network.isTwinned(0));
  EXPECT_FALSE(network.isTwinned(1));
  EXPECT_EQ(network.twinInstance(0), twin.get());
  EXPECT_EQ(network.twinInstance(1), nullptr);
  EXPECT_EQ(network.twinCount(), 1u);
  EXPECT_EQ(network.node(0), nodes[0].get())
      << "node() keeps resolving to the side-0 instance";
}

TEST_F(TwinNetFixture, TwinnedReceiverResolvesToSenderSideInstance) {
  nodes[2]->send(0, std::make_shared<Ping>());  // side 0 -> original
  nodes[1]->send(0, std::make_shared<Ping>());  // side 1 -> twin
  simulator.run();
  ASSERT_EQ(nodes[0]->received.size(), 1u);
  EXPECT_EQ(nodes[0]->received[0], 2u);
  ASSERT_EQ(twin->received.size(), 1u);
  EXPECT_EQ(twin->received[0], 1u);
}

TEST_F(TwinNetFixture, CrossSideSendsToNonTwinsAreSuppressed) {
  nodes[1]->send(2, std::make_shared<Ping>());  // side 1 -> side 0: cut
  twin->send(2, std::make_shared<Ping>());      // twin (side 1) -> side 0: cut
  nodes[0]->send(2, std::make_shared<Ping>());  // side 0 -> side 0: delivered
  twin->send(1, std::make_shared<Ping>());      // twin -> side-1 peer: ok
  simulator.run();
  ASSERT_EQ(nodes[2]->received.size(), 1u);
  EXPECT_EQ(nodes[2]->received[0], 0u);
  ASSERT_EQ(nodes[1]->received.size(), 1u);
  EXPECT_EQ(nodes[1]->received[0], 0u)
      << "the twin's traffic carries the shared logical id";
  EXPECT_EQ(network.counters().droppedTwinRouting, 2u);
}

TEST_F(TwinNetFixture, ClearTwinRouterIsolatesTheTwin) {
  network.clearTwinRouter();
  // Every non-twin node collapses to side 0; the side-1 twin instance is
  // unreachable and its own sends are suppressed.
  nodes[1]->send(0, std::make_shared<Ping>());
  twin->send(1, std::make_shared<Ping>());
  simulator.run();
  ASSERT_EQ(nodes[0]->received.size(), 1u);
  EXPECT_TRUE(twin->received.empty());
  EXPECT_TRUE(nodes[1]->received.empty());
  EXPECT_EQ(network.counters().droppedTwinRouting, 1u);
}

// --- witness formatting ------------------------------------------------------

TEST(SafetyWitness, FormatIsCompactAndDelimiterFree) {
  pbft::SafetyWitness witness;
  witness.seq = 5;
  witness.replicaA = 2;
  witness.replicaB = 3;
  witness.digestA = 0xdeadbeef;
  witness.digestB = 0xcafef00d;
  witness.votersA = {0, 1, 2};
  const std::string text = pbft::formatSafetyWitness(witness);
  EXPECT_EQ(text,
            "seq=5 r2=00000000deadbeef[votes 0.1.2] "
            "r3=00000000cafef00d[synced]");
  EXPECT_EQ(text.find(','), std::string::npos);
  EXPECT_EQ(text.find('"'), std::string::npos);
}

// --- deployment-level safety semantics ---------------------------------------

pbft::DeploymentConfig twinsConfig(std::uint64_t seed) {
  pbft::DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(400);
  config.pbft.viewChangeTimeout = sim::msec(400);
  config.clientRetx = sim::msec(100);
  config.link = sim::LinkModel{sim::msec(5), sim::usec(500)};
  config.correctClients = 10;
  config.warmup = sim::msec(400);
  config.measure = sim::sec(2);
  config.seed = seed;
  return config;
}

pbft::RunResult runTwins(pbft::DeploymentConfig config,
                         fi::TwinFault::Options twins,
                         fi::TwinFault** faultOut = nullptr) {
  pbft::Deployment deployment(std::move(config));
  fi::TwinFault fault(&deployment, std::move(twins));
  fault.install();
  if (faultOut != nullptr) *faultOut = &fault;
  return deployment.run();
}

TEST(TwinsSafety, SinglePairWithinFStaysSafe) {
  // One twinned identity = one Byzantine fault = exactly f. The parity
  // split gives side 1 the quorum {0b, 1, 3}; side 0 ({0a, 2}) can never
  // commit, so no conflicting certificates are reachable.
  for (std::uint64_t seed : {21, 22, 23}) {
    fi::TwinFault::Options twins;
    twins.targets = {0};
    const pbft::RunResult result = runTwins(twinsConfig(seed), twins);
    EXPECT_FALSE(result.safetyViolated) << "seed " << seed;
    EXPECT_FALSE(result.safetyWitness.has_value());
  }
}

TEST(TwinsSafety, SinglePairPeriodicFlipsStayWithinF) {
  // Side-flipping schedules re-route which peers hear which instance but
  // never let both instances assemble quorums simultaneously.
  fi::TwinFault::Options twins;
  twins.targets = {0};
  twins.period = sim::msec(400);
  const pbft::RunResult result = runTwins(twinsConfig(24), twins);
  EXPECT_FALSE(result.safetyViolated);
}

TEST(TwinsSafety, TwoPairsBeyondFProduceConflictingCommits) {
  // Beyond the bound: twins {0, 1} under the parity split give BOTH sides
  // a full logical quorum ({0,1,2} vs {0,1,3}). Each side orders its own
  // clients' requests at the same sequence numbers, so the non-twin
  // replicas 2 and 3 end up with conflicting commit certificates.
  fi::TwinFault::Options twins;
  twins.targets = {0, 1};
  fi::TwinFault* fault = nullptr;
  const pbft::RunResult result = runTwins(twinsConfig(25), twins, &fault);
  EXPECT_TRUE(result.safetyViolated);
  ASSERT_TRUE(result.safetyWitness.has_value());
  const pbft::SafetyWitness& witness = *result.safetyWitness;
  EXPECT_NE(witness.digestA, witness.digestB);
  EXPECT_NE(witness.replicaA, witness.replicaB);
  const std::string text = pbft::formatSafetyWitness(witness);
  EXPECT_EQ(text.rfind("seq=", 0), 0u) << text;
}

TEST(TwinsSafety, BeyondFRunIsDeterministicUnderFixedSeed) {
  auto runOnce = [] {
    fi::TwinFault::Options twins;
    twins.targets = {0, 1};
    return runTwins(twinsConfig(26), twins);
  };
  const pbft::RunResult first = runOnce();
  const pbft::RunResult second = runOnce();
  EXPECT_EQ(first.safetyViolated, second.safetyViolated);
  EXPECT_EQ(first.throughputRps, second.throughputRps);
  EXPECT_EQ(first.correctCompleted, second.correctCompleted);
  ASSERT_EQ(first.safetyWitness.has_value(), second.safetyWitness.has_value());
  if (first.safetyWitness) {
    EXPECT_EQ(pbft::formatSafetyWitness(*first.safetyWitness),
              pbft::formatSafetyWitness(*second.safetyWitness));
  }
}

TEST(TwinsSafety, LateActivationMintsTwinsMidRun) {
  fi::TwinFault::Options twins;
  twins.targets = {0};
  twins.activation = sim::msec(800);
  pbft::Deployment deployment(twinsConfig(27));
  fi::TwinFault fault(&deployment, twins);
  fault.install();
  deployment.runFor(sim::msec(500));
  EXPECT_EQ(fault.twinsActivated(), 0u);
  EXPECT_EQ(deployment.network().twinCount(), 0u);
  deployment.runFor(sim::msec(500));
  EXPECT_EQ(fault.twinsActivated(), 1u);
  EXPECT_TRUE(deployment.network().isTwinned(0));
  const pbft::RunResult result = deployment.collect();
  EXPECT_FALSE(result.safetyViolated);
}

// --- oracle x recovery (twins interacting with the other fault tools) --------

TEST(TwinsRecovery, TwinDuringChurnRestartStaysSafe) {
  // A backup crash-restarts while an identity is twinned. The rejoining
  // replica state-transfers from whichever side it can reach; within the
  // bound that sync can only reflect the one committing side.
  pbft::Deployment deployment(twinsConfig(31));
  fi::TwinFault::Options twins;
  twins.targets = {0};
  fi::TwinFault fault(&deployment, twins);
  fault.install();
  fi::ChurnFault::Options churn;
  churn.target = 2;
  churn.firstCrash = sim::msec(900);
  churn.downtime = sim::msec(250);
  auto churnFault = std::make_shared<fi::ChurnFault>(
      &deployment.simulator(), &deployment.network(), churn);
  churnFault->install();

  const pbft::RunResult result = deployment.run();
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_EQ(churnFault->crashesInjected(), 1u);
  EXPECT_EQ(result.restarts, 1u);
}

TEST(TwinsRecovery, TwinnedPrimaryThroughViewChangeStaysSafe) {
  // Crash the original primary instance while its identity is twinned:
  // the backups' timeouts drive a view change away from the twinned
  // identity, and the oracle must stay silent throughout.
  pbft::Deployment deployment(twinsConfig(32));
  fi::TwinFault::Options twins;
  twins.targets = {0};  // view-0 primary
  fi::TwinFault fault(&deployment, twins);
  fault.install();
  fi::ChurnFault::Options churn;
  churn.target = 0;
  churn.firstCrash = sim::msec(800);
  churn.downtime = sim::msec(600);
  auto churnFault = std::make_shared<fi::ChurnFault>(
      &deployment.simulator(), &deployment.network(), churn);
  churnFault->install();

  const pbft::RunResult result = deployment.run();
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_GE(result.viewChangesInitiated, 1u);
}

TEST(TwinsRecovery, TwinWithPartitionHealStaysSafe) {
  // A network partition opens across the twin schedule and later heals
  // (Network::removeFault). Healing restores links between router sides
  // only to the extent the twin schedule allows — safety must hold before,
  // during, and after.
  pbft::Deployment deployment(twinsConfig(33));
  fi::TwinFault::Options twins;
  twins.targets = {0};
  fi::TwinFault fault(&deployment, twins);
  fault.install();
  auto partition = std::make_shared<fi::PartitionFault>(
      std::set<util::NodeId>{2}, std::set<util::NodeId>{1, 3});
  deployment.network().addFault(partition);
  deployment.simulator().scheduleAt(sim::msec(1200), [&] {
    ASSERT_TRUE(deployment.network().removeFault(partition));
  });

  const pbft::RunResult result = deployment.run();
  EXPECT_FALSE(result.safetyViolated);
}

// --- AVD surface: hyperspace, executor, dedup --------------------------------

TEST(TwinsHyperspace, DimensionsAndBaselinePoint) {
  const core::Hyperspace space = core::makeTwinsHyperspace();
  ASSERT_EQ(space.dimensionCount(), 6u);
  EXPECT_EQ(space.dimension(0).name(), "twin_pairs");
  EXPECT_EQ(space.dimension(0).value(0), 0) << "index 0 = twins off";
  EXPECT_EQ(space.dimension(1).name(), "twin_first");
  EXPECT_EQ(space.dimension(2).name(), "twin_start_ms");
  EXPECT_EQ(space.dimension(3).name(), "twin_period_ms");
  EXPECT_EQ(space.dimension(4).name(), "twin_shape");
  EXPECT_EQ(space.dimension(5).name(), "correct_clients");
}

TEST(TwinsExecutor, BeyondFPointReportsSafetyViolation) {
  core::PbftExecutorOptions options;
  options.pbft.requestTimeout = sim::msec(400);
  options.pbft.viewChangeTimeout = sim::msec(400);
  options.link = sim::LinkModel{sim::msec(5), sim::usec(500)};
  options.warmup = sim::msec(400);
  options.measure = sim::sec(2);
  options.baseSeed = 11;
  core::PbftAttackExecutor executor(core::makeTwinsHyperspace(), options);

  // twin_pairs=2, twin_first=0, activation 0, static parity, 10 clients.
  const core::Outcome beyond = executor.execute({2, 0, 0, 0, 0, 0});
  EXPECT_TRUE(beyond.safetyViolated);
  EXPECT_FALSE(beyond.safetyWitness.empty());
  EXPECT_EQ(beyond.safetyWitness.rfind("seq=", 0), 0u);

  // The all-baseline point runs twin-free and clean.
  const core::Outcome baseline = executor.execute({0, 0, 0, 0, 0, 0});
  EXPECT_FALSE(baseline.safetyViolated);
  EXPECT_TRUE(baseline.safetyWitness.empty());
  EXPECT_LT(baseline.impact, 0.2);

  // One pair stays within the bound regardless of the other dims.
  const core::Outcome withinF = executor.execute({1, 0, 0, 0, 0, 0});
  EXPECT_FALSE(withinF.safetyViolated);
}

TEST(TwinsDedup, SafetyLeadsTheLabelAndSortsFirst) {
  const core::Hyperspace space = core::makeTwinsHyperspace();

  core::TestRecord unsafe;
  unsafe.point = {2, 0, 0, 0, 0, 0};
  unsafe.outcome.impact = 0.55;
  unsafe.outcome.safetyViolated = true;
  unsafe.outcome.safetyWitness = "seq=3 r2=0[votes 0.1.2] r3=1[votes 0.1.3]";

  core::TestRecord loud;  // higher impact but no safety violation
  loud.point = {1, 0, 0, 0, 0, 2};
  loud.outcome.impact = 0.95;

  const auto classes =
      campaign::dedupVulnerabilities(space, {loud, unsafe}, 0.5);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_TRUE(classes[0].signature.safetyViolated)
      << "safety classes outrank higher-impact liveness classes";
  const std::string label =
      campaign::signatureLabel(space, classes[0].signature);
  EXPECT_EQ(label.rfind("SAFETY VIOLATED", 0), 0u) << label;

  const std::string json = campaign::vulnClassesJson(space, classes);
  EXPECT_NE(json.find("\"safetyWitness\": \"seq=3"), std::string::npos);
}

TEST(TwinsJournal, WitnessRoundTripsAndStaysOffNonSafetyLines) {
  campaign::DoneEvent event;
  event.test = 7;
  event.outcome.impact = 0.5;
  event.outcome.safetyViolated = true;
  event.outcome.safetyWitness =
      "seq=9 r2=00000000000000aa[votes 0.1.2] r3=00000000000000bb[synced]";
  const auto decoded = campaign::decodeLine(campaign::encodeDone(event));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->done.outcome.safetyWitness,
            event.outcome.safetyWitness);

  campaign::DoneEvent clean;
  clean.test = 8;
  EXPECT_EQ(campaign::encodeDone(clean).find("safetyWitness"),
            std::string::npos)
      << "non-safety lines keep the pre-twins byte format";
}

}  // namespace
}  // namespace avd
