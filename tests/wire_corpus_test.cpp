// Malformed-wire corpus sweep (ISSUE 1 satellite).
//
// For EVERY PBFT message kind this builds a representative frame and then
// exhaustively corrupts it: truncation at each byte offset, a bit flip at
// each bit position, and byte substitutions (0x00 / 0xFF) at each offset.
// Two properties must hold for every corruption:
//   totality     — decode() never crashes or trips a sanitizer (this file
//                  runs under ASan+UBSan and TSan in the CI matrix);
//   canonicality — when a corrupted frame still decodes, re-encoding the
//                  decoded object reproduces the corrupted frame verbatim,
//                  i.e. the codec never "repairs" attacker bytes silently.
// Truncated prefixes must always be rejected outright: every frame ends
// exactly where its last field does, so a proper prefix cannot satisfy the
// decoder's exhausted() check.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "pbft/message.h"
#include "pbft/wire.h"

namespace avd::pbft {
namespace {

RequestPtr sampleRequest(util::NodeId client, util::RequestId ts,
                         bool readOnly = false) {
  auto request = std::make_shared<RequestMessage>();
  request->client = client;
  request->timestamp = ts;
  request->readOnly = readOnly;
  request->operation = {0x10, 0x20, 0x30, 0x40};
  request->digest = requestDigest(client, ts, request->operation);
  request->auth.tags = {101, 202, 303, 404};
  return request;
}

PrePreparePtr samplePrePrepare() {
  auto prePrepare = std::make_shared<PrePrepareMessage>();
  prePrepare->view = 7;
  prePrepare->seq = 42;
  prePrepare->batch = {sampleRequest(3, 9), sampleRequest(4, 10, true)};
  prePrepare->digest = batchDigest(prePrepare->batch);
  prePrepare->replica = 1;
  prePrepare->auth.tags = {11, 12, 13, 14};
  return prePrepare;
}

/// One representative frame per MsgKind — the corpus.
std::vector<std::pair<const char*, util::Bytes>> corpus() {
  std::vector<std::pair<const char*, util::Bytes>> frames;

  frames.emplace_back("Request", wire::encode(*sampleRequest(9, 3)));
  frames.emplace_back("PrePrepare", wire::encode(*samplePrePrepare()));

  PrepareMessage prepare;
  prepare.view = 7;
  prepare.seq = 42;
  prepare.digest = 0xDEADBEEF;
  prepare.replica = 2;
  prepare.auth.tags = {9, 8, 7, 6};
  frames.emplace_back("Prepare", wire::encode(prepare));

  CommitMessage commit;
  commit.view = 7;
  commit.seq = 42;
  commit.digest = 0xDEADBEEF;
  commit.replica = 3;
  commit.auth.tags = {6, 7, 8, 9};
  frames.emplace_back("Commit", wire::encode(commit));

  ReplyMessage reply;
  reply.view = 7;
  reply.client = 12;
  reply.timestamp = 55;
  reply.replica = 0;
  reply.result = {1, 2, 3, 4, 5};
  reply.resultDigest = 0x1234;
  reply.mac = 0x5678;
  frames.emplace_back("Reply", wire::encode(reply));

  CheckpointMessage checkpoint;
  checkpoint.seq = 128;
  checkpoint.stateDigest = 0xFEEDFACE;
  checkpoint.replica = 1;
  checkpoint.auth.tags = {1, 2, 3, 4};
  frames.emplace_back("Checkpoint", wire::encode(checkpoint));

  ViewChangeMessage viewChange;
  viewChange.newView = 8;
  viewChange.stableSeq = 100;
  PreparedProof proof;
  proof.seq = 105;
  proof.view = 7;
  proof.batch = {sampleRequest(5, 6)};
  proof.digest = batchDigest(proof.batch);
  viewChange.prepared.push_back(std::move(proof));
  viewChange.replica = 2;
  viewChange.auth.tags = {21, 22, 23, 24};
  frames.emplace_back("ViewChange", wire::encode(viewChange));

  NewViewMessage newView;
  newView.view = 8;
  newView.prePrepares = {samplePrePrepare()};
  newView.replica = 0;
  newView.auth.tags = {31, 32, 33, 34};
  frames.emplace_back("NewView", wire::encode(newView));

  StateRequestMessage stateRequest;
  stateRequest.seq = 256;
  stateRequest.replica = 3;
  stateRequest.mac = 0xAB;
  frames.emplace_back("StateRequest", wire::encode(stateRequest));

  StateResponseMessage stateResponse;
  stateResponse.seq = 256;
  stateResponse.stateDigest = 0xD1D1;
  stateResponse.snapshot = {1, 1, 2, 3, 5, 8, 13};
  stateResponse.clientTimestamps = {{4, 10}, {5, 11}, {6, 12}};
  stateResponse.replica = 0;
  stateResponse.mac = 77;
  frames.emplace_back("StateResponse", wire::encode(stateResponse));

  StatusMessage status;
  status.view = 3;
  status.lastExecuted = 500;
  status.replica = 2;
  status.auth.tags = {41, 42, 43, 44};
  frames.emplace_back("Status", wire::encode(status));

  SyncSeqMessage sync;
  sync.seq = 41;
  sync.batch = {sampleRequest(7, 8)};
  sync.digest = batchDigest(sync.batch);
  sync.replica = 1;
  sync.mac = 0xCD;
  frames.emplace_back("SyncSeq", wire::encode(sync));

  return frames;
}

/// The canonicality oracle: any frame the decoder accepts must re-encode
/// to exactly the bytes that were decoded.
void expectTotalAndCanonical(const char* kindName, const util::Bytes& frame,
                             const char* mutation, std::size_t position) {
  const sim::MessagePtr decoded = wire::decode(frame);
  if (decoded == nullptr) return;
  EXPECT_EQ(wire::encode(*decoded), frame)
      << kindName << ": " << mutation << " at " << position
      << " decoded to an object that re-encodes differently";
}

TEST(WireCorpus, CorpusCoversEveryMessageKind) {
  const auto frames = corpus();
  ASSERT_EQ(frames.size(), 12u);
  std::vector<bool> seen(frames.size() + 2, false);
  for (const auto& [name, frame] : frames) {
    ASSERT_FALSE(frame.empty()) << name;
    const sim::MessagePtr decoded = wire::decode(frame);
    ASSERT_NE(decoded, nullptr) << name;
    seen[decoded->kind()] = true;
  }
  for (std::uint32_t kind = 1; kind <= 12; ++kind) {
    EXPECT_TRUE(seen[kind]) << "MsgKind " << kind << " missing from corpus";
  }
}

TEST(WireCorpus, TruncationAtEveryOffsetIsRejectedForEveryKind) {
  for (const auto& [name, frame] : corpus()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      EXPECT_EQ(wire::decode(std::span(frame.data(), len)), nullptr)
          << name << " truncated to " << len << " bytes must not parse";
    }
  }
}

TEST(WireCorpus, BitFlipAtEveryPositionIsTotalAndCanonical) {
  for (const auto& [name, frame] : corpus()) {
    for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
      util::Bytes mutated = frame;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      expectTotalAndCanonical(name, mutated, "bit flip", bit);
    }
  }
}

TEST(WireCorpus, ByteSubstitutionAtEveryOffsetIsTotalAndCanonical) {
  for (const auto& [name, frame] : corpus()) {
    for (std::size_t offset = 0; offset < frame.size(); ++offset) {
      for (const std::uint8_t value : {std::uint8_t{0x00}, std::uint8_t{0xFF}}) {
        if (frame[offset] == value) continue;
        util::Bytes mutated = frame;
        mutated[offset] = value;
        expectTotalAndCanonical(name, mutated, "byte substitution", offset);
      }
    }
  }
}

TEST(WireCorpus, RandomMultiByteCorruptionIsTotalAndCanonical) {
  util::Rng rng(2026);
  const auto frames = corpus();
  for (int round = 0; round < 20000; ++round) {
    const auto& [name, frame] = frames[rng.below(frames.size())];
    util::Bytes mutated = frame;
    const std::uint64_t edits = 1 + rng.below(8);
    for (std::uint64_t e = 0; e < edits; ++e) {
      mutated[rng.below(mutated.size())] =
          static_cast<std::uint8_t>(rng.below(256));
    }
    expectTotalAndCanonical(name, mutated, "random corruption", round);
  }
}

TEST(WireCorpus, RandomTruncationPlusCorruptionNeverCrashes) {
  util::Rng rng(2027);
  const auto frames = corpus();
  for (int round = 0; round < 20000; ++round) {
    const auto& [name, frame] = frames[rng.below(frames.size())];
    util::Bytes mutated(frame.begin(),
                        frame.begin() + static_cast<std::ptrdiff_t>(
                                            rng.below(frame.size() + 1)));
    if (!mutated.empty() && rng.chance(0.7)) {
      mutated[rng.below(mutated.size())] =
          static_cast<std::uint8_t>(rng.below(256));
    }
    // Prefixes of corrupted frames may legitimately parse only when the
    // corruption rewrote a length field; totality is what matters here.
    expectTotalAndCanonical(name, mutated, "truncate+corrupt", round);
  }
}

}  // namespace
}  // namespace avd::pbft
