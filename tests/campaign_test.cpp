// Campaign engine tests: serial bit-identity with Controller::runTests,
// journal round-trips and byte-identical reruns, kill/resume equivalence,
// worker failure/timeout isolation, and vulnerability dedup.
//
// The CampaignSmoke suite is deliberately fast and hermetic — CI's lint leg
// runs it alongside the lint tests as a cheap cross-config sanity check.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "avd/controller.h"
#include "avd/pbft_executor.h"
#include "avd/plugin.h"
#include "avd/quorum_executor.h"
#include "campaign/dedup.h"
#include "campaign/journal.h"
#include "campaign/runner.h"

namespace avd::campaign {
namespace {

// --- helpers -----------------------------------------------------------------

/// Same synthetic ridge landscape as controller_test.cpp: deterministic,
/// instant, and structured enough for the controller to climb.
class RidgeExecutor final : public core::ScenarioExecutor {
 public:
  RidgeExecutor() {
    space_.add(core::Dimension::range("x", 0, 99));
    space_.add(core::Dimension::range("y", 0, 99));
  }

  core::Outcome execute(const core::Point& point) override {
    const double dx = std::abs(static_cast<double>(point[0]) - 70.0);
    const double dy = std::abs(static_cast<double>(point[1]) - 30.0);
    core::Outcome outcome;
    const double ridge = std::max(0.0, 1.0 - dx / 10.0);
    const double along = 1.0 - 0.6 * dy / 99.0;
    outcome.impact = ridge * along;
    outcome.throughputRps = 1000.0 * (1.0 - outcome.impact);
    return outcome;
  }

  const core::Hyperspace& space() const noexcept override { return space_; }

 private:
  core::Hyperspace space_;
};

/// Throws on a deterministic subset of points (the "deployment crashed"
/// case): the campaign must absorb these as failed scenarios, not die.
class FaultyExecutor final : public core::ScenarioExecutor {
 public:
  core::Outcome execute(const core::Point& point) override {
    if ((point[0] + point[1]) % 3 == 0) {
      throw std::runtime_error("deployment wedged");
    }
    return inner_.execute(point);
  }
  const core::Hyperspace& space() const noexcept override {
    return inner_.space();
  }

 private:
  RidgeExecutor inner_;
};

/// Sleeps long enough to trip the campaign watchdog on every execute when
/// constructed sleepy; instant otherwise.
class SleepyExecutor final : public core::ScenarioExecutor {
 public:
  explicit SleepyExecutor(bool sleepy) : sleepy_(sleepy) {}

  core::Outcome execute(const core::Point& point) override {
    if (sleepy_) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    }
    return inner_.execute(point);
  }
  const core::Hyperspace& space() const noexcept override {
    return inner_.space();
  }

 private:
  RidgeExecutor inner_;
  bool sleepy_;
};

ExecutorFactory ridgeFactory() {
  return [] { return std::make_unique<RidgeExecutor>(); };
}

ExecutorFactory quorumFactory() {
  return [] {
    return std::make_unique<core::QuorumApiExecutor>(
        core::makeQuorumApiHyperspace());
  };
}

/// Fresh scratch directory under the test temp root.
std::string scratchDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "avd_campaign_test" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string readAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeAll(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  ASSERT_TRUE(out.good());
}

/// Byte offset one past the `n`-th newline (simulating a kill that landed
/// right at a line boundary), or mid-line when `extra` > 0.
std::size_t cutOffset(const std::string& journal, std::size_t lines,
                      std::size_t extra) {
  std::size_t at = 0;
  for (std::size_t i = 0; i < lines; ++i) {
    at = journal.find('\n', at);
    EXPECT_NE(at, std::string::npos);
    ++at;
  }
  return std::min(journal.size(), at + extra);
}

// --- CampaignSmoke (runs in every CI config, including the lint leg) ---------

TEST(CampaignSmoke, SerialInMemoryCampaignCompletesItsBudget) {
  CampaignOptions options;
  options.totalTests = 40;
  options.workers = 1;
  CampaignRunner runner(ridgeFactory(), options);
  const CampaignResult result = runner.run();
  EXPECT_EQ(result.executed, 40u);
  EXPECT_EQ(result.history.size(), 40u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.timedOut, 0u);
  EXPECT_FALSE(result.aborted);
  EXPECT_GT(result.maxImpact, 0.0);
  for (std::size_t i = 1; i < result.classes.size(); ++i) {
    EXPECT_LE(result.classes[i].exemplar.outcome.impact,
              result.classes[i - 1].exemplar.outcome.impact)
        << "classes are sorted by exemplar impact descending";
  }
}

TEST(CampaignSmoke, ParallelCampaignCompletesItsBudget) {
  CampaignOptions options;
  options.totalTests = 48;
  options.workers = 3;
  CampaignRunner runner(ridgeFactory(), options);
  const CampaignResult result = runner.run();
  EXPECT_EQ(result.executed, 48u);
  EXPECT_FALSE(result.aborted);
  EXPECT_GT(result.maxImpact, 0.0);
}

TEST(CampaignSmoke, CampaignDirectoryHoldsManifestJournalCheckpoint) {
  const std::string dir = scratchDir("smoke_dir");
  CampaignOptions options;
  options.totalTests = 24;
  options.outDir = dir;
  options.system = "ridge";
  options.checkpointEvery = 8;
  CampaignRunner runner(ridgeFactory(), options);
  const CampaignResult result = runner.run();
  EXPECT_EQ(result.executed, 24u);

  const auto manifest = loadManifest(dir);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->system, "ridge");
  EXPECT_EQ(manifest->totalTests, 24u);

  const auto checkpoint = loadCheckpoint(dir);
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->completed, 24u);
  EXPECT_EQ(checkpoint->generated, 24u);
  EXPECT_DOUBLE_EQ(checkpoint->maxImpact, result.maxImpact);

  const auto journal = loadJournal(journalPath(dir));
  ASSERT_TRUE(journal.has_value());
  EXPECT_EQ(journal->events.size(), 48u) << "one gen + one done per test";
  EXPECT_FALSE(journal->truncatedTail);
}

// --- bit-identity with Controller::runTests ----------------------------------

void expectSameHistory(const std::vector<core::TestRecord>& a,
                       const std::vector<core::TestRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].point, b[i].point) << "test " << i + 1;
    EXPECT_EQ(a[i].generatedBy, b[i].generatedBy) << "test " << i + 1;
    // Bit-exact, not approximate: the campaign path must not perturb the
    // controller's arithmetic in any way.
    EXPECT_EQ(a[i].outcome.impact, b[i].outcome.impact) << "test " << i + 1;
    EXPECT_EQ(a[i].bestImpactSoFar, b[i].bestImpactSoFar) << "test " << i + 1;
  }
}

TEST(CampaignBitIdentity, SerialCampaignMatchesRunTestsOnRidge) {
  constexpr std::uint64_t kSeed = 7;
  constexpr std::size_t kTests = 80;

  RidgeExecutor reference;
  core::Controller controller(reference,
                              core::defaultPlugins(reference.space()),
                              core::ControllerOptions{}, kSeed);
  controller.runTests(kTests);

  CampaignOptions options;
  options.seed = kSeed;
  options.totalTests = kTests;
  options.workers = 1;
  CampaignRunner runner(ridgeFactory(), options);
  const CampaignResult result = runner.run();

  expectSameHistory(controller.history(), result.history);
  EXPECT_EQ(controller.maxImpact(), result.maxImpact);
}

TEST(CampaignBitIdentity, SerialCampaignMatchesRunTestsOnQuorum) {
  constexpr std::uint64_t kSeed = 2011;
  constexpr std::size_t kTests = 30;

  core::QuorumApiExecutor reference(core::makeQuorumApiHyperspace());
  core::Controller controller(reference,
                              core::defaultPlugins(reference.space()),
                              core::ControllerOptions{}, kSeed);
  controller.runTests(kTests);

  CampaignOptions options;
  options.seed = kSeed;
  options.totalTests = kTests;
  options.workers = 1;
  CampaignRunner runner(quorumFactory(), options);
  const CampaignResult result = runner.run();

  expectSameHistory(controller.history(), result.history);
  EXPECT_EQ(controller.maxImpact(), result.maxImpact);
}

TEST(CampaignBitIdentity, ParallelCampaignReachesSerialBestImpactOnQuorum) {
  constexpr std::uint64_t kSeed = 2011;
  constexpr std::size_t kTests = 60;

  CampaignOptions serial;
  serial.seed = kSeed;
  serial.totalTests = kTests;
  serial.workers = 1;
  const CampaignResult serialResult =
      CampaignRunner(quorumFactory(), serial).run();

  CampaignOptions parallel = serial;
  parallel.workers = 4;
  const CampaignResult parallelResult =
      CampaignRunner(quorumFactory(), parallel).run();

  EXPECT_EQ(parallelResult.executed, kTests);
  // Completion order differs, so the explored sequence may differ — but the
  // same budget on the same landscape must land within epsilon of the same
  // best impact (the ISSUE acceptance bound).
  EXPECT_NEAR(parallelResult.maxImpact, serialResult.maxImpact, 0.05);
}

// --- journal encode/decode ---------------------------------------------------

TEST(CampaignJournal, GenEventRoundTripsBitExactly) {
  GenEvent event;
  event.test = 17;
  event.point = {3, 0, 41};
  event.generatedBy = "step:ts_inflation_log2";
  event.parentImpact = 1.0 / 3.0;  // not representable in decimal
  event.pluginIndex = 2;

  const std::string line = encodeGen(event);
  const auto decoded = decodeLine(line);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->kind, JournalEvent::Kind::kGen);
  EXPECT_EQ(decoded->gen.test, 17u);
  EXPECT_EQ(decoded->gen.point, event.point);
  EXPECT_EQ(decoded->gen.generatedBy, event.generatedBy);
  EXPECT_EQ(decoded->gen.parentImpact, event.parentImpact) << "bit-exact";
  EXPECT_EQ(decoded->gen.pluginIndex, 2);
}

TEST(CampaignJournal, DoneEventRoundTripsBitExactly) {
  DoneEvent event;
  event.test = 99;
  event.outcome.impact = 0.1 + 0.2;  // 0.30000000000000004
  event.outcome.throughputRps = 1234.5678901234567;
  event.outcome.avgLatencySec = 2e-3;
  event.outcome.viewChanges = 11;
  event.outcome.restarts = 5;
  event.outcome.recoveryLatencySec = 0.125 + 1e-17;
  event.outcome.queueDrops = 123456;
  event.outcome.quotaDrops = 789;
  event.outcome.safetyViolated = true;
  event.bestImpact = 0.9999999999999999;
  event.failed = true;
  event.error = "tab\there \"quoted\" back\\slash\nnewline";

  const std::string line = encodeDone(event);
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "escaping keeps every event on one line";
  const auto decoded = decodeLine(line);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->kind, JournalEvent::Kind::kDone);
  EXPECT_EQ(decoded->done.test, 99u);
  EXPECT_EQ(decoded->done.outcome.impact, event.outcome.impact);
  EXPECT_EQ(decoded->done.outcome.throughputRps,
            event.outcome.throughputRps);
  EXPECT_EQ(decoded->done.outcome.avgLatencySec,
            event.outcome.avgLatencySec);
  EXPECT_EQ(decoded->done.outcome.viewChanges, 11u);
  EXPECT_EQ(decoded->done.outcome.restarts, 5u);
  EXPECT_EQ(decoded->done.outcome.recoveryLatencySec,
            event.outcome.recoveryLatencySec);
  EXPECT_EQ(decoded->done.outcome.queueDrops, 123456u);
  EXPECT_EQ(decoded->done.outcome.quotaDrops, 789u);
  EXPECT_TRUE(decoded->done.outcome.safetyViolated);
  EXPECT_EQ(decoded->done.bestImpact, event.bestImpact);
  EXPECT_TRUE(decoded->done.failed);
  EXPECT_FALSE(decoded->done.timedOut);
  EXPECT_EQ(decoded->done.error, event.error);
}

TEST(CampaignJournal, DoneLinesFromBeforeChurnSupportStillDecode) {
  // Journals written before restarts/recoveryLatencySec existed must stay
  // resumable: the missing keys default to zero.
  const std::string legacy =
      "{\"event\":\"done\",\"test\":4,\"impact\":0.5,\"bestImpact\":0.5,"
      "\"throughputRps\":100,\"avgLatencySec\":0.01,\"viewChanges\":2,"
      "\"safetyViolated\":false,\"failed\":false,\"timedOut\":false,"
      "\"error\":\"\"}";
  const auto decoded = decodeLine(legacy);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->kind, JournalEvent::Kind::kDone);
  EXPECT_EQ(decoded->done.outcome.restarts, 0u);
  EXPECT_EQ(decoded->done.outcome.recoveryLatencySec, 0.0);
  // Same for journals written before flood support.
  EXPECT_EQ(decoded->done.outcome.queueDrops, 0u);
  EXPECT_EQ(decoded->done.outcome.quotaDrops, 0u);
}

TEST(CampaignJournal, MalformedLinesAreRejected) {
  EXPECT_FALSE(decodeLine("").has_value());
  EXPECT_FALSE(decodeLine("not json at all").has_value());
  EXPECT_FALSE(decodeLine("{\"event\":\"gen\"").has_value());
  EXPECT_FALSE(decodeLine("{\"event\":\"mystery\",\"test\":1}").has_value());
}

TEST(CampaignJournal, TornFinalLineIsToleratedEarlierCorruptionIsNot) {
  const std::string dir = scratchDir("torn");
  const std::string path = dir + "/journal.jsonl";

  GenEvent gen;
  gen.test = 1;
  gen.point = {1, 2};
  gen.generatedBy = "random";
  DoneEvent done;
  done.test = 1;
  const std::string good = encodeGen(gen) + "\n" + encodeDone(done) + "\n";

  // kill -9 mid-append: last line has no newline and is half a record.
  writeAll(path, good + "{\"event\":\"done\",\"te");
  const auto torn = loadJournal(path);
  ASSERT_TRUE(torn.has_value());
  EXPECT_EQ(torn->events.size(), 2u);
  EXPECT_TRUE(torn->truncatedTail);
  EXPECT_EQ(torn->validBytes, good.size());

  // Garbage *before* the final line is corruption, not a torn tail.
  writeAll(path, "garbage\n" + good);
  EXPECT_FALSE(loadJournal(path).has_value());
}

TEST(CampaignJournal, SameSeedSerialRunsProduceByteIdenticalJournals) {
  const std::string dirA = scratchDir("bytes_a");
  const std::string dirB = scratchDir("bytes_b");
  for (const std::string& dir : {dirA, dirB}) {
    CampaignOptions options;
    options.seed = 13;
    options.totalTests = 50;
    options.outDir = dir;
    CampaignRunner runner(ridgeFactory(), options);
    runner.run();
  }
  const std::string a = readAll(journalPath(dirA));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, readAll(journalPath(dirB)));
}

// --- kill / resume -----------------------------------------------------------

/// Runs one uninterrupted campaign into `full`, replays the same campaign
/// into `cut`, chops its journal as a kill -9 would, resumes, and verifies
/// the resumed journal is byte-identical to the uninterrupted one.
void killResumeRoundTrip(std::size_t cutLines, std::size_t cutExtra,
                         const std::string& tag) {
  CampaignOptions options;
  options.seed = 5;
  options.totalTests = 60;
  options.checkpointEvery = 8;

  const std::string full = scratchDir("full_" + tag);
  options.outDir = full;
  const CampaignResult uninterrupted =
      CampaignRunner(ridgeFactory(), options).run();

  const std::string cut = scratchDir("cut_" + tag);
  options.outDir = cut;
  CampaignRunner(ridgeFactory(), options).run();

  const std::string journal = readAll(journalPath(cut));
  writeAll(journalPath(cut),
           journal.substr(0, cutOffset(journal, cutLines, cutExtra)));

  CampaignOptions resumeOptions;
  resumeOptions.outDir = cut;
  const CampaignResult resumed =
      CampaignRunner(ridgeFactory(), resumeOptions).resume();

  EXPECT_EQ(resumed.executed, 60u);
  EXPECT_EQ(resumed.maxImpact, uninterrupted.maxImpact);
  EXPECT_EQ(readAll(journalPath(cut)), readAll(journalPath(full)))
      << "resumed journal must be byte-identical to the uninterrupted run";
  expectSameHistory(uninterrupted.history, resumed.history);
}

TEST(CampaignResume, KillMidLineResumesToIdenticalJournal) {
  // 41 whole lines + 23 bytes of a torn line: the torn line is dropped and
  // rewritten by the resumed run.
  killResumeRoundTrip(41, 23, "midline");
}

TEST(CampaignResume, KillWithScenarioInFlightResumesToIdenticalJournal) {
  // An odd line count in a serial journal (gen/done alternate) leaves the
  // last scenario acquired but unreported — the in-flight case. Resume must
  // re-execute it without re-journaling its gen line.
  killResumeRoundTrip(17, 0, "inflight");
}

TEST(CampaignResume, EmptyJournalResumesFromScratch) {
  killResumeRoundTrip(0, 0, "empty");
}

// --- pre-twins journal compatibility -----------------------------------------
//
// The committed fixtures under tests/fixtures/ were generated by the
// pre-twins binary (`avd_cli campaign --system quorum --tests 24
// --workers 1 --seed 11`). The safetyWitness journal key is emitted only
// on safety-violating lines, so journals from before the twins tool must
// decode, resume, and re-cluster to byte-identical artifacts forever.

std::string fixturePath(const std::string& name) {
  return std::string(AVD_CAMPAIGN_FIXTURE_DIR) + "/" + name;
}

ExecutorFactory pretwinsQuorumFactory() {
  return [] {
    // Mirrors avd_cli's `--system quorum --seed 11` executor exactly.
    core::QuorumExecutorOptions options;
    options.baseSeed = 11;
    return std::make_unique<core::QuorumApiExecutor>(
        core::makeQuorumApiHyperspace(), options);
  };
}

TEST(CampaignCompat, PreTwinsJournalLinesReEncodeByteIdentically) {
  std::istringstream journal(readAll(fixturePath("pretwins_journal.jsonl")));
  std::string line;
  std::size_t lines = 0;
  while (std::getline(journal, line)) {
    ++lines;
    const auto decoded = decodeLine(line);
    ASSERT_TRUE(decoded.has_value()) << line;
    if (decoded->kind == JournalEvent::Kind::kDone) {
      EXPECT_TRUE(decoded->done.outcome.safetyWitness.empty());
      EXPECT_EQ(encodeDone(decoded->done), line)
          << "pre-twins done lines must survive a decode/encode round trip";
    } else {
      ASSERT_EQ(decoded->kind, JournalEvent::Kind::kGen);
      EXPECT_EQ(encodeGen(decoded->gen), line);
    }
  }
  EXPECT_EQ(lines, 48u) << "24 tests = 24 gen + 24 done lines";
}

TEST(CampaignCompat, PreTwinsDirectoryKillResumesToIdenticalArtifacts) {
  // Simulate a campaign killed mid-run on the old binary: the fixture
  // journal truncated mid-line, resumed by today's code.
  const std::string dir = scratchDir("pretwins");
  const std::string fullJournal = readAll(fixturePath("pretwins_journal.jsonl"));
  writeAll(dir + "/manifest.json", readAll(fixturePath("pretwins_manifest.json")));
  writeAll(journalPath(dir), fullJournal.substr(0, cutOffset(fullJournal, 29, 11)));

  CampaignOptions options;
  options.outDir = dir;
  CampaignRunner runner(pretwinsQuorumFactory(), options);
  const CampaignResult result = runner.resume();

  EXPECT_EQ(result.executed, 24u);
  EXPECT_EQ(readAll(journalPath(dir)), fullJournal)
      << "resumed journal must be byte-identical to the pre-twins run's";

  // Re-clustering the resumed history reproduces the pre-twins class
  // report bit for bit: signature shape and JSON are versioned such that
  // twins-free campaigns never see the new fields.
  const auto executor = pretwinsQuorumFactory()();
  EXPECT_EQ(vulnClassesJson(executor->space(), result.classes),
            readAll(fixturePath("pretwins_classes.json")));
}

TEST(CampaignResume, CrashDuringCheckpointRecovers) {
  // A kill -9 inside writeCheckpoint leaves a stale checkpoint .tmp file
  // (the atomic-rename never happened) alongside a torn journal. Resume
  // must ignore the leftover, trust the journal, and still converge to the
  // uninterrupted run's bytes — including a fresh, valid checkpoint.
  CampaignOptions options;
  options.seed = 5;
  options.totalTests = 60;
  options.checkpointEvery = 8;

  const std::string full = scratchDir("ckpt_full");
  options.outDir = full;
  const CampaignResult uninterrupted =
      CampaignRunner(ridgeFactory(), options).run();

  const std::string cut = scratchDir("ckpt_cut");
  options.outDir = cut;
  CampaignRunner(ridgeFactory(), options).run();
  const std::string journal = readAll(journalPath(cut));
  writeAll(journalPath(cut), journal.substr(0, cutOffset(journal, 33, 9)));
  writeAll(checkpointPath(cut) + ".tmp", "{\"generated\":999,\"comp");

  CampaignOptions resumeOptions;
  resumeOptions.outDir = cut;
  const CampaignResult resumed =
      CampaignRunner(ridgeFactory(), resumeOptions).resume();
  EXPECT_EQ(resumed.executed, 60u);
  EXPECT_EQ(readAll(journalPath(cut)), readAll(journalPath(full)));
  EXPECT_EQ(resumed.maxImpact, uninterrupted.maxImpact);

  const auto checkpoint = loadCheckpoint(cut);
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->completed, 60u);
}

TEST(CampaignResume, MissingDirectoryThrows) {
  CampaignOptions options;
  options.outDir =
      (std::filesystem::temp_directory_path() / "avd_campaign_test" /
       "does_not_exist")
          .string();
  CampaignRunner runner(ridgeFactory(), options);
  EXPECT_THROW(runner.resume(), std::runtime_error);
}

TEST(CampaignResume, TamperedJournalIsDetectedAsDivergence) {
  const std::string dir = scratchDir("tampered");
  CampaignOptions options;
  options.seed = 5;
  options.totalTests = 20;
  options.outDir = dir;
  CampaignRunner(ridgeFactory(), options).run();

  // Same-length edit keeps the line parseable but changes the provenance:
  // replay must notice the journal no longer matches the deterministic
  // regeneration.
  std::string journal = readAll(journalPath(dir));
  const auto at = journal.find("\"generatedBy\":\"random\"");
  ASSERT_NE(at, std::string::npos);
  journal.replace(at, 22, "\"generatedBy\":\"zandom\"");
  writeAll(journalPath(dir), journal);

  CampaignOptions resumeOptions;
  resumeOptions.outDir = dir;
  CampaignRunner runner(ridgeFactory(), resumeOptions);
  EXPECT_THROW(runner.resume(), std::runtime_error);
}

// --- failure and timeout isolation -------------------------------------------

TEST(CampaignIsolation, ThrowingExecutorYieldsFailedScenariosNotACrash) {
  CampaignOptions options;
  options.seed = 3;
  options.totalTests = 50;
  options.workers = 1;
  CampaignRunner runner(
      [] { return std::make_unique<FaultyExecutor>(); }, options);
  const CampaignResult result = runner.run();
  EXPECT_EQ(result.executed, 50u);
  EXPECT_GT(result.failed, 0u) << "a third of the space throws";
  EXPECT_FALSE(result.aborted);
  std::size_t zeroImpact = 0;
  for (const core::TestRecord& record : result.history) {
    if (record.outcome.impact == 0.0) ++zeroImpact;
  }
  EXPECT_GE(zeroImpact, result.failed)
      << "failed scenarios enter history with the zero outcome";
}

TEST(CampaignIsolation, ThrowingExecutorIsIsolatedInParallelToo) {
  CampaignOptions options;
  options.seed = 3;
  options.totalTests = 40;
  options.workers = 2;
  CampaignRunner runner(
      [] { return std::make_unique<FaultyExecutor>(); }, options);
  const CampaignResult result = runner.run();
  EXPECT_EQ(result.executed, 40u);
  EXPECT_GT(result.failed, 0u);
  EXPECT_FALSE(result.aborted);
}

TEST(CampaignIsolation, WatchdogRetiresWedgedWorkerAndCampaignFinishes) {
  // Worker 0's executor wedges on every scenario; worker 1 is healthy. The
  // watchdog must retire worker 0's first scenario as timed out and let
  // worker 1 finish the whole budget.
  std::atomic<int> built{0};
  CampaignOptions options;
  options.seed = 9;
  options.totalTests = 25;
  options.workers = 2;
  options.scenarioTimeoutMs = 100;
  CampaignRunner runner(
      [&built] {
        return std::make_unique<SleepyExecutor>(built.fetch_add(1) == 0);
      },
      options);
  const CampaignResult result = runner.run();
  EXPECT_EQ(result.executed, 25u);
  EXPECT_EQ(result.timedOut, 1u);
  EXPECT_FALSE(result.aborted);
}

TEST(CampaignIsolation, AllWorkersWedgedAbortsWithPartialResults) {
  CampaignOptions options;
  options.seed = 9;
  options.totalTests = 10;
  options.workers = 2;
  options.scenarioTimeoutMs = 80;
  options.maxWorkerRespawns = 0;  // poison-forever, the pre-respawn behavior
  CampaignRunner runner(
      [] { return std::make_unique<SleepyExecutor>(true); }, options);
  const CampaignResult result = runner.run();
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.timedOut, 2u) << "one timeout per poisoned worker";
  EXPECT_LT(result.executed, 10u);
}

TEST(CampaignIsolation, RespawnRevivesAWedgedSlotInsteadOfAborting) {
  // A single worker whose first executor wedges on every scenario used to
  // poison the slot permanently and abort the campaign. With a respawn
  // budget the slot gets a fresh executor (here: an instant one) and the
  // campaign completes, counting the respawn.
  std::atomic<int> built{0};
  CampaignOptions options;
  options.seed = 9;
  options.totalTests = 15;
  options.workers = 1;
  options.scenarioTimeoutMs = 100;
  options.maxWorkerRespawns = 4;
  CampaignRunner runner(
      [&built] {
        return std::make_unique<SleepyExecutor>(built.fetch_add(1) == 0);
      },
      options);
  const CampaignResult result = runner.run();
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.executed, 15u);
  EXPECT_EQ(result.timedOut, 1u);
  EXPECT_GE(result.respawns, 1u);
}

TEST(CampaignIsolation, RespawnBudgetExhaustionStillAborts) {
  // Every executor incarnation wedges: respawning can't help, and the
  // all-wedged abort must survive (a respawn loop must not spin forever).
  CampaignOptions options;
  options.seed = 9;
  options.totalTests = 10;
  options.workers = 1;
  options.scenarioTimeoutMs = 80;
  options.maxWorkerRespawns = 2;
  CampaignRunner runner(
      [] { return std::make_unique<SleepyExecutor>(true); }, options);
  const CampaignResult result = runner.run();
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.respawns, 2u) << "the whole budget was spent trying";
  EXPECT_LT(result.executed, 10u);
}

// --- vulnerability dedup -----------------------------------------------------

core::Hyperspace twoDimSpace() {
  core::Hyperspace space;
  space.add(core::Dimension::range("knob", 0, 9));
  space.add(core::Dimension::choice("mode", {0, 5}));
  return space;
}

core::TestRecord record(core::Point point, double impact,
                        std::uint64_t viewChanges = 0,
                        bool safetyViolated = false) {
  core::TestRecord out;
  out.point = std::move(point);
  out.outcome.impact = impact;
  out.outcome.viewChanges = viewChanges;
  out.outcome.safetyViolated = safetyViolated;
  return out;
}

TEST(CampaignDedup, NearbyPointsWithSameBehaviorCollapseToOneClass) {
  const core::Hyperspace space = twoDimSpace();
  const std::vector<core::TestRecord> history = {
      record({3, 1}, 0.85),  // knob + mode active, band 8
      record({4, 1}, 0.82),  // same signature -> same class
      record({0, 0}, 0.95),  // nothing active, band 9 -> own class
      record({5, 1}, 0.30),  // below the triage floor
  };
  const auto classes = dedupVulnerabilities(space, history, 0.5);
  ASSERT_EQ(classes.size(), 2u);

  EXPECT_EQ(classes[0].exemplar.outcome.impact, 0.95);
  EXPECT_EQ(classes[0].count, 1u);
  EXPECT_EQ(classes[0].exemplarTest, 3u) << "1-based history index";

  EXPECT_EQ(classes[1].exemplar.outcome.impact, 0.85);
  EXPECT_EQ(classes[1].count, 2u);
  EXPECT_EQ(classes[1].exemplarTest, 1u);
  EXPECT_EQ(classes[1].signature.activeDims,
            (std::vector<std::uint8_t>{1, 1}));
}

TEST(CampaignDedup, BehaviorDifferencesSplitClasses) {
  const core::Hyperspace space = twoDimSpace();
  const std::vector<core::TestRecord> history = {
      record({3, 1}, 0.85, 0, false),
      record({3, 1}, 0.85, 5, false),   // view-change band differs
      record({3, 1}, 0.85, 5, true),    // safety flag differs
  };
  const auto classes = dedupVulnerabilities(space, history, 0.5);
  EXPECT_EQ(classes.size(), 3u);
}

TEST(CampaignDedup, LabelNamesBandsFlagsAndActiveDims) {
  const core::Hyperspace space = twoDimSpace();
  const auto sig = signatureOf(space, record({4, 1}, 0.93, 2, true));
  const std::string label = signatureLabel(space, sig);
  EXPECT_NE(label.find("0.9-1.0"), std::string::npos) << label;
  EXPECT_NE(label.find("1-3"), std::string::npos) << label;
  EXPECT_NE(label.find("SAFETY VIOLATED"), std::string::npos) << label;
  EXPECT_NE(label.find("knob"), std::string::npos) << label;
  EXPECT_NE(label.find("mode"), std::string::npos) << label;
}

TEST(CampaignDedup, JsonReportNamesDimensionsAndCounts) {
  const core::Hyperspace space = twoDimSpace();
  // 0.75 is dyadic, so %.17g prints it exactly as "0.75".
  const auto classes = dedupVulnerabilities(
      space, {record({3, 1}, 0.75), record({4, 1}, 0.75)}, 0.5);
  const std::string json = vulnClassesJson(space, classes);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("knob"), std::string::npos);
  EXPECT_NE(json.find("0.75"), std::string::npos);
}

TEST(CampaignDedup, RestartBandSplitsClassesAndNamesItselfInTheLabel) {
  const core::Hyperspace space = twoDimSpace();
  core::TestRecord churned = record({3, 1}, 0.85);
  churned.outcome.restarts = 4;  // sustained churn band
  const std::vector<core::TestRecord> history = {
      record({3, 1}, 0.85),  // same point, no restarts
      churned,
  };
  const auto classes = dedupVulnerabilities(space, history, 0.5);
  ASSERT_EQ(classes.size(), 2u)
      << "a churn-driven outage must not collapse into the message-level "
         "attack with the same impact";

  const auto sig = signatureOf(space, churned);
  EXPECT_EQ(sig.restartBand, 2);
  const std::string label = signatureLabel(space, sig);
  EXPECT_NE(label.find("restarts 3-8"), std::string::npos) << label;
  // No-restart signatures keep their pre-churn labels.
  EXPECT_EQ(signatureLabel(space, signatureOf(space, history[0]))
                .find("restarts"),
            std::string::npos);
}

// --- churn campaign end-to-end -----------------------------------------------

TEST(CampaignChurn, FindsCrashTimingClassesWithByteIdenticalJournals) {
  // The acceptance run for the churn dimensions: an AVD campaign over the
  // crash-timing hyperspace must journal at least one distinct class whose
  // outage was driven by crash-restart timing, and the journal must be a
  // pure function of the seed.
  const ExecutorFactory churnFactory = [] {
    core::PbftExecutorOptions options;
    options.baseSeed = 97;
    options.measure = sim::msec(1500);
    return std::make_unique<core::PbftAttackExecutor>(
        core::makeChurnHyperspace(), options);
  };

  const std::string dirA = scratchDir("churn_a");
  const std::string dirB = scratchDir("churn_b");
  CampaignResult result;
  for (const std::string& dir : {dirA, dirB}) {
    CampaignOptions options;
    options.seed = 2011;
    options.totalTests = 40;
    options.outDir = dir;
    options.dedupMinImpact = 0.25;
    CampaignRunner runner(churnFactory, options);
    result = runner.run();
  }
  const std::string journalA = readAll(journalPath(dirA));
  EXPECT_FALSE(journalA.empty());
  EXPECT_EQ(journalA, readAll(journalPath(dirB)));
  EXPECT_NE(journalA.find("\"restarts\":"), std::string::npos);

  bool crashTimingClass = false;
  for (const VulnClass& cls : result.classes) {
    if (cls.signature.restartBand > 0 && !cls.signature.safetyViolated) {
      crashTimingClass = true;
      EXPECT_GT(cls.exemplar.outcome.restarts, 0u);
    }
    EXPECT_FALSE(cls.signature.safetyViolated)
        << "churn must never produce divergence";
  }
  EXPECT_TRUE(crashTimingClass)
      << "no high-impact vulnerability class driven by crash-restart timing";
}

}  // namespace
}  // namespace avd::campaign
