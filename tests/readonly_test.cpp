// Tests for the read-only (tentative execution) optimization.
#include <gtest/gtest.h>

#include <string>

#include "faultinject/network_faults.h"
#include "pbft/deployment.h"

namespace avd::pbft {
namespace {

/// Read-heavy KV workload: one PUT to warm the key, then alternating GET
/// (read-only when `useReadOnly`) and PUT.
DeploymentConfig kvWorkload(bool useReadOnly, std::uint64_t seed) {
  DeploymentConfig config;
  config.pbft.f = 1;
  config.service = ServiceKind::kKv;
  config.correctClients = 6;
  config.warmup = sim::msec(300);
  config.measure = sim::sec(2);
  config.seed = seed;
  config.correctClientBehavior.opGenerator = [](util::RequestId i) {
    if (i % 4 == 1) {
      return KvService::encodePut("key", "value" + std::to_string(i));
    }
    return KvService::encodeGet("key");
  };
  if (useReadOnly) {
    config.correctClientBehavior.readOnlyPredicate =
        [](util::RequestId i) { return i % 4 != 1; };  // GETs are read-only
  }
  return config;
}

TEST(ReadOnly, TentativeReadsCompleteAndAreServedWithoutOrdering) {
  Deployment deployment(kvWorkload(true, 5));
  const RunResult result = deployment.run();

  EXPECT_GT(result.throughputRps, 100.0);
  EXPECT_FALSE(result.safetyViolated);

  std::uint64_t servedReadOnly = 0;
  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    servedReadOnly += deployment.replica(r).stats().readOnlyServed;
  }
  EXPECT_GT(servedReadOnly, 100u) << "the tentative path must carry reads";

  std::uint64_t completedReadOnly = 0;
  for (std::uint32_t i = 0; i < 6; ++i) {
    completedReadOnly += deployment.correctClient(i).readOnlyCompleted();
  }
  EXPECT_GT(completedReadOnly, 50u);
}

TEST(ReadOnly, ReadsBypassTheSequenceLog) {
  // Roughly 3/4 of operations are GETs; with the optimization they never
  // consume sequence numbers, so ordered executions per completed request
  // drop to ~1/4 (absolute counts rise — reads got faster — hence ratios).
  const auto orderedPerCompletion = [](Deployment& deployment) {
    (void)deployment.collect();  // drain the run; only stats are compared
    std::uint64_t completed = 0;
    for (std::uint32_t i = 0; i < 6; ++i) {
      completed += deployment.correctClient(i).completed();
    }
    return static_cast<double>(
               deployment.replica(0).stats().requestsExecuted) /
           static_cast<double>(std::max<std::uint64_t>(1, completed));
  };
  Deployment withReadOnly(kvWorkload(true, 6));
  Deployment without(kvWorkload(false, 6));
  withReadOnly.run();
  without.run();
  EXPECT_LT(orderedPerCompletion(withReadOnly), 0.5);
  EXPECT_GT(orderedPerCompletion(without), 0.9);
}

TEST(ReadOnly, ImprovesReadLatency) {
  Deployment withReadOnly(kvWorkload(true, 7));
  Deployment without(kvWorkload(false, 7));
  const RunResult fast = withReadOnly.run();
  const RunResult slow = without.run();
  // Tentative reads are one round trip; ordered reads are ~5 hops.
  EXPECT_LT(fast.avgLatencySec, slow.avgLatencySec * 0.85);
  EXPECT_GT(fast.throughputRps, slow.throughputRps);
}

TEST(ReadOnly, NonQueryableOperationsAreServedViaOrderingServerSide) {
  // Counter ops have no read-only evaluation: the replica itself falls
  // through to the ordered path, so the workload keeps moving and the
  // client never even needs its own fallback.
  DeploymentConfig config;
  config.pbft.f = 1;
  config.correctClients = 3;
  config.warmup = sim::msec(300);
  config.measure = sim::sec(2);
  config.seed = 8;
  config.correctClientBehavior.readOnlyPredicate =
      [](util::RequestId) { return true; };  // everything claims read-only

  Deployment deployment(config);
  const RunResult result = deployment.run();
  EXPECT_GT(result.correctCompleted, 100u)
      << "server-side fallback must keep the workload moving";
  std::uint64_t served = 0;
  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    served += deployment.replica(r).stats().readOnlyServed;
  }
  EXPECT_EQ(served, 0u) << "nothing is answerable tentatively here";
  EXPECT_FALSE(result.safetyViolated);
}

TEST(ReadOnly, UnreachableTentativeQuorumFallsBackClientSide) {
  // Client 4's requests never reach replicas 2 and 3, so its tentative
  // reads can gather at most two matching replies (< 2f+1 = 3) and must be
  // retried through the ordered path, which completes via the primary's
  // pre-prepare relay.
  DeploymentConfig config = kvWorkload(true, 10);
  config.correctClients = 1;
  Deployment deployment(config);
  const util::NodeId clientId = deployment.correctClientId(0);
  deployment.network().addFault(std::make_shared<fi::DropFault>(
      1.0, fi::FlowFilter{.fromNodes = {clientId}, .toNodes = {2, 3}}));
  deployment.run();

  const Client& client = deployment.correctClient(0);
  EXPECT_GT(client.readOnlyFallbacks(), 3u)
      << "tentative reads cannot reach their quorum";
  // Each fallen-back read costs two retransmission rounds before the
  // ordered path serves it, so the loop is slow but steady.
  EXPECT_GE(client.completed(), 8u)
      << "the ordered path keeps serving the reads";
}

TEST(ReadOnly, SilentReplicaForcesFallbackButNotStall) {
  // 2f+1 = 3 matching tentative replies need 3 of 4 replicas; with one
  // silent replica that is exactly possible — with two, reads must fall
  // back yet still complete through ordering... except two silent replicas
  // exceed f=1 entirely, so use one silent + verify reads still complete
  // on the tentative path.
  DeploymentConfig config = kvWorkload(true, 9);
  ReplicaBehavior silent;
  silent.silentPrepares = false;
  config.replicaBehaviors[3] = silent;  // actually correct; placeholder
  Deployment deployment(config);
  deployment.runFor(sim::msec(300));
  deployment.replica(3).setAlive(false);  // fail-stop one replica
  deployment.runFor(sim::sec(2));

  std::uint64_t completedReadOnly = 0;
  for (std::uint32_t i = 0; i < 6; ++i) {
    completedReadOnly += deployment.correctClient(i).readOnlyCompleted();
  }
  EXPECT_GT(completedReadOnly, 20u)
      << "3 live replicas still form the 2f+1 tentative quorum";
  EXPECT_FALSE(deployment.collect().safetyViolated);
}

}  // namespace
}  // namespace avd::pbft
