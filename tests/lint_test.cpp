// avd_lint rule-engine tests.
//
// Every rule class is demonstrated twice: against an on-disk fixture under
// tests/lint_fixtures/ with seeded violations (the "would the gate have
// caught this" proof), and against inline snippets pinning down edge cases
// of the tokenizer, the suppression syntax, and the reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace avd::lint {
namespace {

std::string readFixture(const std::string& name) {
  const std::string path = std::string(AVD_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Lints one fixture under a pretend repo path (path scoping is part of
/// several rules).
std::vector<Finding> lintFixture(const std::string& name,
                                 const std::string& pretendPath,
                                 const Options& options = {}) {
  return lintSource(pretendPath, readFixture(name), options);
}

std::size_t countRule(const std::vector<Finding>& findings,
                      std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// --- Registry ---------------------------------------------------------------

TEST(LintRegistry, ContainsTheSixRulesPlusMeta) {
  const auto& rules = ruleRegistry();
  ASSERT_EQ(rules.size(), 7u);
  EXPECT_TRUE(isKnownRule("nondeterminism"));
  EXPECT_TRUE(isKnownRule("unchecked-parse"));
  EXPECT_TRUE(isKnownRule("uncapped-reserve"));
  EXPECT_TRUE(isKnownRule("naked-lock"));
  EXPECT_TRUE(isKnownRule("unordered-iter"));
  EXPECT_TRUE(isKnownRule("detached-thread"));
  EXPECT_TRUE(isKnownRule("bad-suppression"));
  EXPECT_FALSE(isKnownRule("no-such-rule"));
}

// --- R1 nondeterminism -------------------------------------------------------

TEST(LintR1, FixtureSeedsThreeViolationsAndNoFalsePositives) {
  const auto findings =
      lintFixture("nondeterminism.cc", "src/avd/fixture.cpp");
  EXPECT_EQ(countRule(findings, "nondeterminism"), 4u)
      << "rand, srand, time, random_device";
  EXPECT_EQ(findings.size(), countRule(findings, "nondeterminism"))
      << "no other rule fires on this fixture";
}

TEST(LintR1, CommonRngIsExempt) {
  const auto findings = lintSource(
      "src/common/rng.cpp", "void f() { auto x = rand(); (void)x; }");
  EXPECT_EQ(countRule(findings, "nondeterminism"), 0u);
}

TEST(LintR1, QualifiedNamesOutsideStdAreNotFlagged) {
  const auto findings = lintSource(
      "src/avd/a.cpp", "int f() { return sim::time(3) + obj.rand(); }");
  EXPECT_EQ(countRule(findings, "nondeterminism"), 0u);
  const auto flagged =
      lintSource("src/avd/a.cpp", "int g() { return std::rand(); }");
  EXPECT_EQ(countRule(flagged, "nondeterminism"), 1u);
}

// --- R2 unchecked-parse ------------------------------------------------------

TEST(LintR2, FixtureSeedsDeclAndDiscardViolations) {
  const auto findings =
      lintFixture("unchecked_parse.cc", "src/pbft/wire_fixture.cpp");
  EXPECT_EQ(countRule(findings, "unchecked-parse"), 3u)
      << "optional decl without nodiscard, get* decl, dropped reader.u32()";
}

TEST(LintR2, NodiscardDeclarationsPass) {
  const auto findings = lintSource(
      "src/x/a.h",
      "[[nodiscard]] std::optional<int> parse();\n"
      "std::optional<int> alsoParse();\n");
  EXPECT_EQ(countRule(findings, "unchecked-parse"), 1u);
}

TEST(LintR2, OutOfLineDefinitionsAreNotReflagged) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "std::optional<int> Parser::field() { return value_; }\n");
  EXPECT_EQ(countRule(findings, "unchecked-parse"), 0u);
}

TEST(LintR2, CheckedReaderResultIsNotFlagged) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "bool f(util::ByteReader& reader) {\n"
      "  const auto v = reader.u32();\n"
      "  return v.has_value();\n"
      "}\n");
  EXPECT_EQ(countRule(findings, "unchecked-parse"), 0u);
}

// --- R3 uncapped-reserve -----------------------------------------------------

TEST(LintR3, FixtureSeedsReserveAndResizeViolations) {
  const auto findings =
      lintFixture("uncapped_reserve.cc", "src/pbft/fixture.cpp");
  EXPECT_EQ(countRule(findings, "uncapped-reserve"), 2u)
      << "uncapped reserve + uncapped resize; the clamped and literal "
         "variants pass";
}

TEST(LintR3, BinaryMultiplyIsNotADeref) {
  const auto findings = lintSource(
      "src/x/a.cpp", "void f() { out.reserve(data.size() * 2); }");
  EXPECT_EQ(countRule(findings, "uncapped-reserve"), 0u);
}

// --- R4 naked-lock -----------------------------------------------------------

TEST(LintR4, FixtureSeedsFourViolationsRaiiPasses) {
  const auto findings = lintFixture("naked_lock.cc", "src/common/fixture.cpp");
  EXPECT_EQ(countRule(findings, "naked-lock"), 4u)
      << "lock, unlock, try_lock, unlock-via-accessor";
}

TEST(LintR4, LockGuardOnNonMutexNameIsNotFlagged) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "void f() { std::unique_lock<std::mutex> lock(m_); lock.unlock(); }");
  EXPECT_EQ(countRule(findings, "naked-lock"), 0u)
      << "unlocking a unique_lock handle is RAII-safe";
}

// --- R5 unordered-iter -------------------------------------------------------

TEST(LintR5, FixtureSeedsRangeForAndIteratorViolations) {
  const auto findings =
      lintFixture("unordered_iter.cc", "src/pbft/replica.cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 2u)
      << "range-for over unordered_map + .begin() on unordered_set; the "
         "std::map loop and the point lookup pass";
}

TEST(LintR5, SameCodeOutsideTheScopedFilesIsAllowed) {
  const auto findings =
      lintFixture("unordered_iter.cc", "src/avd/somewhere_else.cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 0u);
}

TEST(LintR5, DeclarationInHeaderIsTrackedAcrossFiles) {
  const std::vector<SourceFile> files = {
      {"src/pbft/replica.h",
       "class R { std::unordered_map<int, int> votes_; };"},
      {"src/pbft/replica.cpp",
       "int R::f() { int s = 0; for (auto& [k, v] : votes_) s += v; "
       "return s; }"},
  };
  const auto findings = lintFiles(files);
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1u);
}

TEST(LintR5, CampaignRunnerIsInScope) {
  const auto findings =
      lintFixture("unordered_iter.cc", "src/campaign/runner.cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 2u)
      << "the campaign driver loop is ordering-sensitive: journal replay "
         "must see the same interleaving every run";
}

TEST(LintR5, CampaignHeaderDeclarationsAreTrackedAcrossFiles) {
  const std::vector<SourceFile> files = {
      {"src/campaign/runner.h",
       "class C { std::unordered_map<int, int> inFlight_; };"},
      {"src/campaign/runner.cpp",
       "int C::f() { int s = 0; for (auto& [k, v] : inFlight_) s += v; "
       "return s; }"},
  };
  const auto findings = lintFiles(files);
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1u);
}

TEST(LintR5, ChurnAndDedupSourcesAreInScope) {
  // The crash-recovery additions are ordering-sensitive too: churn books
  // simulator events and dedup orders the triage report.
  for (const char* path :
       {"src/faultinject/churn.cpp", "src/campaign/dedup.cpp"}) {
    const auto findings = lintFixture("unordered_iter.cc", path);
    EXPECT_EQ(countRule(findings, "unordered-iter"), 2u) << path;
  }
}

TEST(LintR5, StableStorageHeaderDeclarationsAreTrackedAcrossFiles) {
  const std::vector<SourceFile> files = {
      {"src/pbft/stable_storage.h",
       "struct StableRecord { std::unordered_map<int, int> proofs_; };"},
      {"src/pbft/replica.cpp",
       "int g() { int s = 0; for (auto& [k, v] : proofs_) s += v; "
       "return s; }"},
  };
  const auto findings = lintFiles(files);
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1u);
}

// --- R6 detached-thread ------------------------------------------------------

TEST(LintR6, FixtureSeedsThreeViolationsJoinAndFreeCallPass) {
  const auto findings =
      lintFixture("detached_thread.cc", "src/campaign/fixture.cpp");
  EXPECT_EQ(countRule(findings, "detached-thread"), 3u)
      << "member detach, pointer detach, temporary fire-and-forget";
  EXPECT_EQ(findings.size(), countRule(findings, "detached-thread"))
      << "join() and the free function detach(int) must not fire";
}

TEST(LintR6, AppliesRepoWideNotJustCampaign) {
  const auto findings = lintSource(
      "src/sim/net.cpp", "void f(std::thread& t) { t.detach(); }");
  EXPECT_EQ(countRule(findings, "detached-thread"), 1u);
}

TEST(LintR6, DetachAsValueOrMemberNameIsNotFlagged) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "bool detach = false;\n"
      "void f() { if (detach) return; config.detach = true; }\n");
  EXPECT_EQ(countRule(findings, "detached-thread"), 0u)
      << "only member *calls* named detach are thread detaches";
}

// --- Suppressions ------------------------------------------------------------

TEST(LintSuppression, FixtureHasFindingsButAllSuppressed) {
  Options options;
  options.includeSuppressed = true;
  const auto all =
      lintFixture("suppressed.cc", "src/common/fixture.cpp", options);
  EXPECT_GE(all.size(), 5u) << "violations are still detected";
  EXPECT_EQ(unsuppressedCount(all), 0u) << "but every one is allowed";

  const auto visible = lintFixture("suppressed.cc", "src/common/fixture.cpp");
  EXPECT_TRUE(visible.empty())
      << "default report hides suppressed findings entirely";
}

TEST(LintSuppression, UnknownRuleNameInAllowIsItselfAFinding) {
  const auto findings = lintSource(
      "src/x/a.cpp", "void f() { }  // avd-lint: allow(nacked-lock)\n");
  EXPECT_EQ(countRule(findings, "bad-suppression"), 1u)
      << "typo'd suppressions must not silently pass";
}

TEST(LintSuppression, DirectiveOnlyCoversItsOwnLine) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "void f() {\n"
      "  mutex_.lock();  // avd-lint: allow(naked-lock)\n"
      "  mutex_.unlock();\n"
      "}\n");
  EXPECT_EQ(unsuppressedCount(findings), 1u) << "second line still fires";
}

// --- Clean fixture and machine-readable report -------------------------------

TEST(LintClean, IdiomaticCodeProducesZeroFindings) {
  const auto findings = lintFixture("clean.cc", "src/pbft/replica.cpp");
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : findings.front().message);
}

TEST(LintReport, JsonContainsFileLineRuleAndMessage) {
  const auto findings = lintSource(
      "src/x/a.cpp", "void f() { mutex_.lock(); }");
  ASSERT_EQ(findings.size(), 1u);
  const std::string json = toJson(findings);
  EXPECT_NE(json.find("\"file\": \"src/x/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"naked-lock\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": false"), std::string::npos);
}

TEST(LintReport, JsonEscapesQuotesAndBackslashes) {
  std::vector<Finding> findings = {
      {"a\"b\\c.cpp", 3, "naked-lock", "msg with \"quotes\"", false}};
  const std::string json = toJson(findings);
  EXPECT_NE(json.find("a\\\"b\\\\c.cpp"), std::string::npos);
}

// --- Tokenizer robustness ----------------------------------------------------

TEST(LintTokenizer, ViolationsInsideStringsAndCommentsAreIgnored) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "const char* kDoc = \"call rand() then mutex_.lock()\";\n"
      "// rand() in a comment\n"
      "/* mutex_.lock() in a block comment */\n"
      "const char* kRaw = R\"(time(nullptr))\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintTokenizer, RawStringWithDelimiterIsSkipped) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "const char* kRaw = R\"x(rand() \")\" still inside)x\";\n"
      "void f() { mutex_.lock(); }\n");
  EXPECT_EQ(countRule(findings, "naked-lock"), 1u)
      << "lexer resynchronizes after the raw string";
  EXPECT_EQ(countRule(findings, "nondeterminism"), 0u);
}

}  // namespace
}  // namespace avd::lint
