// avd_lint rule-engine tests.
//
// Every rule class is demonstrated twice: against an on-disk fixture under
// tests/lint_fixtures/ with seeded violations (the "would the gate have
// caught this" proof), and against inline snippets pinning down edge cases
// of the tokenizer, the suppression syntax, and the reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace avd::lint {
namespace {

std::string readFixture(const std::string& name) {
  const std::string path = std::string(AVD_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Lints one fixture under a pretend repo path (path scoping is part of
/// several rules).
std::vector<Finding> lintFixture(const std::string& name,
                                 const std::string& pretendPath,
                                 const Options& options = {}) {
  return lintSource(pretendPath, readFixture(name), options);
}

std::size_t countRule(const std::vector<Finding>& findings,
                      std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// --- Registry ---------------------------------------------------------------

TEST(LintRegistry, ContainsTheEighteenRulesPlusMeta) {
  const auto& rules = ruleRegistry();
  ASSERT_EQ(rules.size(), 19u);
  EXPECT_TRUE(isKnownRule("determinism-boundary"));
  EXPECT_TRUE(isKnownRule("syscall-discipline"));
  EXPECT_TRUE(isKnownRule("durability-ordering"));
  EXPECT_TRUE(isKnownRule("blocking-under-lock"));
  EXPECT_TRUE(isKnownRule("wire-symmetry"));
  EXPECT_TRUE(isKnownRule("handler-exhaustive"));
  EXPECT_TRUE(isKnownRule("quorum-consistency"));
  EXPECT_TRUE(isKnownRule("event-coverage"));
  EXPECT_TRUE(isKnownRule("nondeterminism"));
  EXPECT_TRUE(isKnownRule("unchecked-parse"));
  EXPECT_TRUE(isKnownRule("uncapped-reserve"));
  EXPECT_TRUE(isKnownRule("naked-lock"));
  EXPECT_TRUE(isKnownRule("unordered-iter"));
  EXPECT_TRUE(isKnownRule("detached-thread"));
  EXPECT_TRUE(isKnownRule("lock-order"));
  EXPECT_TRUE(isKnownRule("timer-capture"));
  EXPECT_TRUE(isKnownRule("tainted-size"));
  EXPECT_TRUE(isKnownRule("stale-suppression"));
  EXPECT_TRUE(isKnownRule("bad-suppression"));
  EXPECT_FALSE(isKnownRule("no-such-rule"));
}

// --- R1 nondeterminism -------------------------------------------------------

TEST(LintR1, FixtureSeedsThreeViolationsAndNoFalsePositives) {
  const auto findings =
      lintFixture("nondeterminism.cc", "src/avd/fixture.cpp");
  EXPECT_EQ(countRule(findings, "nondeterminism"), 4u)
      << "rand, srand, time, random_device";
  // Inside the determinism-critical scope, R15 independently reports the
  // same leaves as direct nondeterministic effects.
  EXPECT_EQ(countRule(findings, "determinism-boundary"), 4u);
  EXPECT_EQ(findings.size(), countRule(findings, "nondeterminism") +
                                 countRule(findings, "determinism-boundary"))
      << "no other rule fires on this fixture";
}

TEST(LintR1, CommonRngIsExempt) {
  const auto findings = lintSource(
      "src/common/rng.cpp", "void f() { auto x = rand(); (void)x; }");
  EXPECT_EQ(countRule(findings, "nondeterminism"), 0u);
}

TEST(LintR1, QualifiedNamesOutsideStdAreNotFlagged) {
  const auto findings = lintSource(
      "src/avd/a.cpp", "int f() { return sim::time(3) + obj.rand(); }");
  EXPECT_EQ(countRule(findings, "nondeterminism"), 0u);
  const auto flagged =
      lintSource("src/avd/a.cpp", "int g() { return std::rand(); }");
  EXPECT_EQ(countRule(flagged, "nondeterminism"), 1u);
}

// --- R2 unchecked-parse ------------------------------------------------------

TEST(LintR2, FixtureSeedsDeclAndDiscardViolations) {
  const auto findings =
      lintFixture("unchecked_parse.cc", "src/pbft/wire_fixture.cpp");
  EXPECT_EQ(countRule(findings, "unchecked-parse"), 3u)
      << "optional decl without nodiscard, get* decl, dropped reader.u32()";
}

TEST(LintR2, NodiscardDeclarationsPass) {
  const auto findings = lintSource(
      "src/x/a.h",
      "[[nodiscard]] std::optional<int> parse();\n"
      "std::optional<int> alsoParse();\n");
  EXPECT_EQ(countRule(findings, "unchecked-parse"), 1u);
}

TEST(LintR2, OutOfLineDefinitionsAreNotReflagged) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "std::optional<int> Parser::field() { return value_; }\n");
  EXPECT_EQ(countRule(findings, "unchecked-parse"), 0u);
}

TEST(LintR2, CheckedReaderResultIsNotFlagged) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "bool f(util::ByteReader& reader) {\n"
      "  const auto v = reader.u32();\n"
      "  return v.has_value();\n"
      "}\n");
  EXPECT_EQ(countRule(findings, "unchecked-parse"), 0u);
}

// --- R3 uncapped-reserve -----------------------------------------------------

TEST(LintR3, FixtureSeedsReserveAndResizeViolations) {
  const auto findings =
      lintFixture("uncapped_reserve.cc", "src/pbft/fixture.cpp");
  EXPECT_EQ(countRule(findings, "uncapped-reserve"), 2u)
      << "uncapped reserve + uncapped resize; the clamped and literal "
         "variants pass";
}

TEST(LintR3, BinaryMultiplyIsNotADeref) {
  const auto findings = lintSource(
      "src/x/a.cpp", "void f() { out.reserve(data.size() * 2); }");
  EXPECT_EQ(countRule(findings, "uncapped-reserve"), 0u);
}

// --- R4 naked-lock -----------------------------------------------------------

TEST(LintR4, FixtureSeedsFourViolationsRaiiPasses) {
  const auto findings = lintFixture("naked_lock.cc", "src/common/fixture.cpp");
  EXPECT_EQ(countRule(findings, "naked-lock"), 4u)
      << "lock, unlock, try_lock, unlock-via-accessor";
}

TEST(LintR4, LockGuardOnNonMutexNameIsNotFlagged) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "void f() { std::unique_lock<std::mutex> lock(m_); lock.unlock(); }");
  EXPECT_EQ(countRule(findings, "naked-lock"), 0u)
      << "unlocking a unique_lock handle is RAII-safe";
}

// --- R5 unordered-iter -------------------------------------------------------

TEST(LintR5, FixtureSeedsRangeForAndIteratorViolations) {
  const auto findings =
      lintFixture("unordered_iter.cc", "src/pbft/replica.cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 2u)
      << "range-for over unordered_map + .begin() on unordered_set; the "
         "std::map loop and the point lookup pass";
}

TEST(LintR5, SameCodeOutsideTheScopedFilesIsAllowed) {
  const auto findings =
      lintFixture("unordered_iter.cc", "src/avd/somewhere_else.cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 0u);
}

TEST(LintR5, DeclarationInHeaderIsTrackedAcrossFiles) {
  const std::vector<SourceFile> files = {
      {"src/pbft/replica.h",
       "class R { std::unordered_map<int, int> votes_; };"},
      {"src/pbft/replica.cpp",
       "int R::f() { int s = 0; for (auto& [k, v] : votes_) s += v; "
       "return s; }"},
  };
  const auto findings = lintFiles(files);
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1u);
}

TEST(LintR5, CampaignRunnerIsInScope) {
  const auto findings =
      lintFixture("unordered_iter.cc", "src/campaign/runner.cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 2u)
      << "the campaign driver loop is ordering-sensitive: journal replay "
         "must see the same interleaving every run";
}

TEST(LintR5, CampaignHeaderDeclarationsAreTrackedAcrossFiles) {
  const std::vector<SourceFile> files = {
      {"src/campaign/runner.h",
       "class C { std::unordered_map<int, int> inFlight_; };"},
      {"src/campaign/runner.cpp",
       "int C::f() { int s = 0; for (auto& [k, v] : inFlight_) s += v; "
       "return s; }"},
  };
  const auto findings = lintFiles(files);
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1u);
}

TEST(LintR5, ChurnAndDedupSourcesAreInScope) {
  // The crash-recovery additions are ordering-sensitive too: churn books
  // simulator events and dedup orders the triage report.
  for (const char* path :
       {"src/faultinject/churn.cpp", "src/campaign/dedup.cpp"}) {
    const auto findings = lintFixture("unordered_iter.cc", path);
    EXPECT_EQ(countRule(findings, "unordered-iter"), 2u) << path;
  }
}

TEST(LintR5, FloodAndNetworkSchedulerSourcesAreInScope) {
  // The resource-exhaustion additions book simulator events (flood tools)
  // and pick the next ingress lane to service (network scheduler): hash
  // iteration order there would break same-seed replay of flood campaigns.
  for (const char* path :
       {"src/faultinject/flood.cpp", "src/sim/network.cpp"}) {
    const auto findings = lintFixture("unordered_iter.cc", path);
    EXPECT_EQ(countRule(findings, "unordered-iter"), 2u) << path;
  }
}

TEST(LintR5, TwinsSourcesAreInScope) {
  // The twins tool mints replicas and installs the partition-side router:
  // hash iteration there would make the equivocation schedule — and hence
  // which safety violations a seed finds — replay-dependent.
  const auto findings =
      lintFixture("unordered_iter.cc", "src/faultinject/twins.cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 2u);
}

TEST(LintR5, TwinsHeaderDeclarationsAreTrackedAcrossFiles) {
  const std::vector<SourceFile> files = {
      {"src/faultinject/twins.h",
       "class T { std::unordered_map<int, int> sides_; };"},
      {"src/faultinject/twins.cpp",
       "int T::f() { int s = 0; for (auto& [k, v] : sides_) s += v; "
       "return s; }"},
  };
  const auto findings = lintFiles(files);
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1u);
}

TEST(LintR5, FloodHeaderDeclarationsAreTrackedAcrossFiles) {
  const std::vector<SourceFile> files = {
      {"src/faultinject/flood.h",
       "class F { std::unordered_map<int, int> lanes_; };"},
      {"src/sim/network.cpp",
       "int F::f() { int s = 0; for (auto& [k, v] : lanes_) s += v; "
       "return s; }"},
  };
  const auto findings = lintFiles(files);
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1u);
}

TEST(LintR5, StableStorageHeaderDeclarationsAreTrackedAcrossFiles) {
  const std::vector<SourceFile> files = {
      {"src/pbft/stable_storage.h",
       "struct StableRecord { std::unordered_map<int, int> proofs_; };"},
      {"src/pbft/replica.cpp",
       "int g() { int s = 0; for (auto& [k, v] : proofs_) s += v; "
       "return s; }"},
  };
  const auto findings = lintFiles(files);
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1u);
}

// --- R6 detached-thread ------------------------------------------------------

TEST(LintR6, FixtureSeedsThreeViolationsJoinAndFreeCallPass) {
  const auto findings =
      lintFixture("detached_thread.cc", "src/campaign/fixture.cpp");
  EXPECT_EQ(countRule(findings, "detached-thread"), 3u)
      << "member detach, pointer detach, temporary fire-and-forget";
  EXPECT_EQ(findings.size(), countRule(findings, "detached-thread"))
      << "join() and the free function detach(int) must not fire";
}

TEST(LintR6, AppliesRepoWideNotJustCampaign) {
  const auto findings = lintSource(
      "src/sim/net.cpp", "void f(std::thread& t) { t.detach(); }");
  EXPECT_EQ(countRule(findings, "detached-thread"), 1u);
}

TEST(LintR6, DetachAsValueOrMemberNameIsNotFlagged) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "bool detach = false;\n"
      "void f() { if (detach) return; config.detach = true; }\n");
  EXPECT_EQ(countRule(findings, "detached-thread"), 0u)
      << "only member *calls* named detach are thread detaches";
}

// --- Suppressions ------------------------------------------------------------

TEST(LintSuppression, FixtureHasFindingsButAllSuppressed) {
  Options options;
  options.includeSuppressed = true;
  const auto all =
      lintFixture("suppressed.cc", "src/common/fixture.cpp", options);
  EXPECT_GE(all.size(), 5u) << "violations are still detected";
  EXPECT_EQ(unsuppressedCount(all), 0u) << "but every one is allowed";

  const auto visible = lintFixture("suppressed.cc", "src/common/fixture.cpp");
  EXPECT_TRUE(visible.empty())
      << "default report hides suppressed findings entirely";
}

TEST(LintSuppression, UnknownRuleNameInAllowIsItselfAFinding) {
  const auto findings = lintSource(
      "src/x/a.cpp", "void f() { }  // avd-lint: allow(nacked-lock)\n");
  EXPECT_EQ(countRule(findings, "bad-suppression"), 1u)
      << "typo'd suppressions must not silently pass";
}

TEST(LintSuppression, DirectiveOnlyCoversItsOwnLine) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "void f() {\n"
      "  mutex_.lock();  // avd-lint: allow(naked-lock)\n"
      "  mutex_.unlock();\n"
      "}\n");
  EXPECT_EQ(unsuppressedCount(findings), 1u) << "second line still fires";
}

// --- Clean fixture and machine-readable report -------------------------------

TEST(LintClean, IdiomaticCodeProducesZeroFindings) {
  const auto findings = lintFixture("clean.cc", "src/pbft/replica.cpp");
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : findings.front().message);
}

TEST(LintReport, JsonContainsFileLineRuleAndMessage) {
  const auto findings = lintSource(
      "src/x/a.cpp", "void f() { mutex_.lock(); }");
  ASSERT_EQ(findings.size(), 1u);
  const std::string json = toJson(findings);
  EXPECT_NE(json.find("\"file\": \"src/x/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"naked-lock\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": false"), std::string::npos);
}

TEST(LintReport, JsonEscapesQuotesAndBackslashes) {
  std::vector<Finding> findings = {
      {"a\"b\\c.cpp", 3, "naked-lock", "msg with \"quotes\"", false}};
  const std::string json = toJson(findings);
  EXPECT_NE(json.find("a\\\"b\\\\c.cpp"), std::string::npos);
}

// --- Tokenizer robustness ----------------------------------------------------

TEST(LintTokenizer, ViolationsInsideStringsAndCommentsAreIgnored) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "const char* kDoc = \"call rand() then mutex_.lock()\";\n"
      "// rand() in a comment\n"
      "/* mutex_.lock() in a block comment */\n"
      "const char* kRaw = R\"(time(nullptr))\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintTokenizer, RawStringWithDelimiterIsSkipped) {
  const auto findings = lintSource(
      "src/x/a.cpp",
      "const char* kRaw = R\"x(rand() \")\" still inside)x\";\n"
      "void f() { mutex_.lock(); }\n");
  EXPECT_EQ(countRule(findings, "naked-lock"), 1u)
      << "lexer resynchronizes after the raw string";
  EXPECT_EQ(countRule(findings, "nondeterminism"), 0u);
}

// --- R7 lock-order -----------------------------------------------------------

TEST(LintR7, FixtureSeedsDirectCallMediatedAndSelfInversions) {
  const auto findings = lintFixture("lock_order.cc", "src/pbft/accounts.cpp");
  EXPECT_EQ(countRule(findings, "lock-order"), 3u);
  // The self-deadlock is reported as a re-acquisition, not a cycle.
  EXPECT_TRUE(std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.rule == "lock-order" &&
           f.message.find("re-acqui") != std::string::npos;
  }));
  // The call-mediated cycle names both mutexes of the Journal class.
  EXPECT_TRUE(std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.rule == "lock-order" &&
           f.message.find("Journal::bufMutex_") != std::string::npos &&
           f.message.find("Journal::diskMutex_") != std::string::npos;
  }));
}

TEST(LintR7, ConsistentOrderAndScopedReleaseAreClean) {
  const auto findings =
      lintFixture("lock_order_clean.cc", "src/pbft/accounts.cpp");
  EXPECT_EQ(countRule(findings, "lock-order"), 0u);
}

TEST(LintR7, InversionAcrossTranslationUnitsIsDetected) {
  // The mutex members live in a header; each TU takes them in the opposite
  // order. Neither file alone has a cycle — only the repo-wide graph does.
  const std::vector<SourceFile> files = {
      {"src/net/channel.h",
       "#include <mutex>\n"
       "class Channel {\n"
       " public:\n"
       "  void send();\n"
       "  void recv();\n"
       " private:\n"
       "  std::mutex txMutex_;\n"
       "  std::mutex rxMutex_;\n"
       "};\n"},
      {"src/net/send.cpp",
       "#include \"channel.h\"\n"
       "void Channel::send() {\n"
       "  const std::lock_guard<std::mutex> tx(txMutex_);\n"
       "  const std::lock_guard<std::mutex> rx(rxMutex_);\n"
       "}\n"},
      {"src/net/recv.cpp",
       "#include \"channel.h\"\n"
       "void Channel::recv() {\n"
       "  const std::lock_guard<std::mutex> rx(rxMutex_);\n"
       "  const std::lock_guard<std::mutex> tx(txMutex_);\n"
       "}\n"},
  };
  const auto findings = lintFiles(files);
  EXPECT_EQ(countRule(findings, "lock-order"), 1u);
}

TEST(LintR7, DeferLockIsNotAnAcquisition) {
  const auto findings = lintSource(
      "src/pbft/x.cpp",
      "#include <mutex>\n"
      "class Pair {\n"
      "  std::mutex aMutex_;\n"
      "  std::mutex bMutex_;\n"
      "  void both() {\n"
      "    std::unique_lock<std::mutex> la(aMutex_, std::defer_lock);\n"
      "    std::unique_lock<std::mutex> lb(bMutex_, std::defer_lock);\n"
      "  }\n"
      "  void reversed() {\n"
      "    std::unique_lock<std::mutex> lb(bMutex_, std::defer_lock);\n"
      "    std::unique_lock<std::mutex> la(aMutex_, std::defer_lock);\n"
      "  }\n"
      "};\n");
  EXPECT_EQ(countRule(findings, "lock-order"), 0u);
}

// --- R8 timer-capture --------------------------------------------------------

TEST(LintR8, FixtureSeedsRefCaptureAndIteratorCaptureViolations) {
  const auto findings = lintFixture("timer_capture.cc", "src/sim/session.cpp");
  EXPECT_EQ(countRule(findings, "timer-capture"), 3u);
}

TEST(LintR8, ValueCapturesOfThisAndPlainKeysAreClean) {
  const auto findings =
      lintFixture("timer_capture_clean.cc", "src/sim/session.cpp");
  EXPECT_EQ(countRule(findings, "timer-capture"), 0u);
}

// --- R9 tainted-size ---------------------------------------------------------

TEST(LintR9, FixtureSeedsUnclampedReserveAndLoopBound) {
  const auto findings = lintFixture("tainted_size.cc", "src/pbft/wire.cpp");
  EXPECT_EQ(countRule(findings, "tainted-size"), 2u);
}

TEST(LintR9, FloodToolSourcesAreCovered) {
  // R9 is repo-wide, but pin the flood tools explicitly: they synthesize
  // wire payloads from attacker-chosen sizes, exactly the shape R9 guards.
  const auto findings =
      lintFixture("tainted_size.cc", "src/faultinject/flood.cpp");
  EXPECT_EQ(countRule(findings, "tainted-size"), 2u);
}

TEST(LintR9, ClampedAndRemainingValidatedFlowsAreClean) {
  const auto findings =
      lintFixture("tainted_size_clean.cc", "src/pbft/wire.cpp");
  EXPECT_EQ(countRule(findings, "tainted-size"), 0u);
}

TEST(LintR9, RemainingDivisorClampSanitizes) {
  // Regression for the KvService::restore fix: bounding the entry count by
  // remaining()/kMinEntryBytes counts as validation.
  const auto findings = lintSource(
      "src/pbft/service.cpp",
      "void restore(util::ByteReader& reader) {\n"
      "  constexpr std::uint64_t kMinEntryBytes = 8;\n"
      "  const auto count = reader.u64();\n"
      "  if (!count || *count > reader.remaining() / kMinEntryBytes) return;\n"
      "  for (std::uint64_t i = 0; i < *count; ++i) {\n"
      "    consume(i);\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(countRule(findings, "tainted-size"), 0u);
}

TEST(LintR9, UnclampedCountIntoLoopIsFlagged) {
  // The same shape without the remaining() check — the pre-fix
  // KvService::restore bug.
  const auto findings = lintSource(
      "src/pbft/service.cpp",
      "void restore(util::ByteReader& reader) {\n"
      "  const auto count = reader.u64();\n"
      "  if (!count) return;\n"
      "  for (std::uint64_t i = 0; i < *count; ++i) {\n"
      "    consume(i);\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(countRule(findings, "tainted-size"), 1u);
}

// --- R10 stale-suppression ---------------------------------------------------

TEST(LintR10, FixtureSeedsTrailingAndStandaloneDeadDirectives) {
  const auto findings =
      lintFixture("stale_suppression.cc", "src/pbft/state.cpp");
  EXPECT_EQ(countRule(findings, "stale-suppression"), 2u);
}

TEST(LintR10, LiveDirectivesAreNotFlagged) {
  // suppressed.cc's every allow() still covers a real finding.
  const auto findings = lintFixture("suppressed.cc", "src/pbft/node.cpp");
  EXPECT_EQ(countRule(findings, "stale-suppression"), 0u);
}

TEST(LintR10, StaleSuppressionCannotSuppressItself) {
  const auto findings = lintSource(
      "src/pbft/x.cpp",
      "int f() {\n"
      "  return 1;  // avd-lint: allow(nondeterminism) allow(stale-suppression)\n"
      "}\n");
  EXPECT_GE(countRule(findings, "stale-suppression"), 1u);
  EXPECT_EQ(unsuppressedCount(findings), findings.size());
}

// --- R11 wire-symmetry -------------------------------------------------------

TEST(LintR11, FixtureSeedsReorderLoopAndTrailingFieldViolations) {
  const auto findings =
      lintFixture("wire_symmetry.cc", "src/pbft/wire_fixture.cpp");
  EXPECT_EQ(countRule(findings, "wire-symmetry"), 3u)
      << "reordered helper pair, loop-depth asymmetry, dropped trailing field";
  EXPECT_EQ(findings.size(), countRule(findings, "wire-symmetry"))
      << "no other rule fires on this fixture";
}

TEST(LintR11, SymmetricCodecIsClean) {
  const auto findings =
      lintFixture("wire_symmetry_clean.cc", "src/pbft/wire_fixture.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(LintR11, ReorderingOneWireFieldBreaksTheCleanFixture) {
  // The acceptance property: flipping any two fields of a clean codec must
  // fail R11. Swap the decoder's id/seq reads of the clean fixture.
  std::string source = readFixture("wire_symmetry_clean.cc");
  const std::string ordered =
      "header.id = reader.u32();\n  header.seq = reader.u64();";
  const std::string swapped =
      "header.seq = reader.u64();\n  header.id = reader.u32();";
  const std::size_t at = source.find(ordered);
  ASSERT_NE(at, std::string::npos);
  source.replace(at, ordered.size(), swapped);
  const auto findings = lintSource("src/pbft/wire_fixture.cpp", source);
  EXPECT_EQ(countRule(findings, "wire-symmetry"), 1u);
}

// --- R12 handler-exhaustive --------------------------------------------------

TEST(LintR12, FixtureSeedsAllThreeDispatchHoles) {
  const auto findings =
      lintFixture("handler_exhaustive.cc", "src/pbft/node_fixture.cpp");
  EXPECT_EQ(countRule(findings, "handler-exhaustive"), 3u)
      << "sent-but-unparsed, parsed-but-undispatched, dispatched-but-unparsed";
  EXPECT_EQ(findings.size(), countRule(findings, "handler-exhaustive"))
      << "no other rule fires on this fixture";
}

TEST(LintR12, ClosedDispatchPlaneIsClean) {
  const auto findings =
      lintFixture("handler_exhaustive_clean.cc", "src/pbft/node_fixture.cpp");
  EXPECT_TRUE(findings.empty());
}

// --- R13 quorum-consistency --------------------------------------------------

TEST(LintR13, FixtureSeedsNonCanonicalFormAndMagicNumber) {
  const auto findings =
      lintFixture("quorum_consistency.cc", "src/pbft/quorum_fixture.cpp");
  EXPECT_EQ(countRule(findings, "quorum-consistency"), 2u)
      << "3f+2 threshold and votes >= 3";
  EXPECT_EQ(findings.size(), countRule(findings, "quorum-consistency"))
      << "no other rule fires on this fixture";
}

TEST(LintR13, CanonicalCertificateFormulasAreClean) {
  const auto findings =
      lintFixture("quorum_consistency_clean.cc", "src/pbft/quorum_fixture.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(LintR13, QuorumScanIsScopedToPbftSources) {
  // The same magic comparison outside pbft/ is not a protocol quorum.
  const auto findings =
      lintFixture("quorum_consistency.cc", "src/sim/quorum_fixture.cpp");
  EXPECT_EQ(countRule(findings, "quorum-consistency"), 0u);
}

// --- R14 event-coverage ------------------------------------------------------

TEST(LintR14, TransitionWithoutEmissionIsFlagged) {
  const auto findings =
      lintFixture("event_coverage.cc", "src/pbft/replica_fixture.cpp");
  EXPECT_EQ(countRule(findings, "event-coverage"), 1u);
  EXPECT_EQ(findings.size(), countRule(findings, "event-coverage"))
      << "no other rule fires on this fixture";
}

TEST(LintR14, CounterIncrementAtTheTransitionIsClean) {
  const auto findings =
      lintFixture("event_coverage_clean.cc", "src/pbft/replica_fixture.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(LintR14, DeletingTheEmissionSiteBreaksTheCleanFixture) {
  // The acceptance property: removing the counter increment from a clean
  // transition must fail R14.
  std::string source = readFixture("event_coverage_clean.cc");
  const std::string emission = "++stats_.viewChangesInitiated;\n";
  const std::size_t at = source.find(emission);
  ASSERT_NE(at, std::string::npos);
  source.erase(at, emission.size());
  const auto findings = lintSource("src/pbft/replica_fixture.cpp", source);
  EXPECT_EQ(countRule(findings, "event-coverage"), 1u);
}

TEST(LintR14, PlainFlagAssignmentIsNotAnEmission) {
  // `inFlight_ = false` mentions no counter increment; only ++/+= count.
  const auto findings = lintSource(
      "src/pbft/replica_fixture.cpp",
      "void Replica::startViewChange() {\n"
      "  viewChangeInFlight_ = true;\n"
      "}\n");
  EXPECT_EQ(countRule(findings, "event-coverage"), 1u);
}

// --- R15 determinism-boundary ------------------------------------------------

TEST(LintR15, FixtureSeedsClockAndRngLeavesInProtectedScope) {
  const auto findings =
      lintFixture("determinism_boundary.cc", "src/sim/sched_fixture.cpp");
  EXPECT_EQ(countRule(findings, "determinism-boundary"), 2u)
      << "steady_clock leaf and rand leaf, one finding each";
  EXPECT_EQ(countRule(findings, "nondeterminism"), 2u)
      << "R1 flags the same leaves as spelled nondeterminism";
  EXPECT_EQ(findings.size(),
            countRule(findings, "determinism-boundary") +
                countRule(findings, "nondeterminism"));
}

TEST(LintR15, SeededGeneratorInProtectedScopeIsClean) {
  const auto findings =
      lintFixture("determinism_boundary_clean.cc", "src/sim/sched_fixture.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(LintR15, SameLeavesOutsideProtectedScopeDrawNoBoundaryFinding) {
  // The leaves still violate R1 everywhere, but R15 is scoped to the
  // deterministic replay core (sim/pbft/avd).
  const auto findings =
      lintFixture("determinism_boundary.cc", "src/campaign/stats_fixture.cpp");
  EXPECT_EQ(countRule(findings, "determinism-boundary"), 0u);
  EXPECT_EQ(countRule(findings, "nondeterminism"), 2u);
}

TEST(LintR15, TwinsToolIsInsideTheProtectedScope) {
  // The twin schedule must be a pure function of (node id, virtual time):
  // a wall-clock or ambient-rng leaf there changes which instance peers
  // reach run to run, desynchronizing same-seed campaigns.
  const auto findings =
      lintFixture("determinism_boundary.cc", "src/faultinject/twins.cpp");
  EXPECT_EQ(countRule(findings, "determinism-boundary"), 2u);
}

TEST(LintR15, EffectPropagatesAcrossTranslationUnits) {
  // The sim TU spells no nondeterministic leaf; the effect is imported
  // through a call into a helper TU, and the finding lands on the call
  // site with the true leaf as witness root.
  const std::vector<SourceFile> files = {
      {"src/campaign/stats_fixture.cpp",
       readFixture("effect_propagation_util.cc")},
      {"src/sim/sched_fixture.cpp", readFixture("effect_propagation_sim.cc")},
  };
  const auto findings = lintFiles(files);
  ASSERT_EQ(countRule(findings, "determinism-boundary"), 1u);
  for (const Finding& f : findings) {
    if (f.rule != "determinism-boundary") continue;
    EXPECT_EQ(f.file, "src/sim/sched_fixture.cpp");
    EXPECT_NE(f.message.find("wallNowMs"), std::string::npos);
    EXPECT_NE(f.message.find("system_clock"), std::string::npos)
        << "the witness chain names the leaf, not just the callee";
  }
  EXPECT_EQ(countRule(findings, "nondeterminism"), 1u)
      << "R1 still flags the leaf itself, in the helper TU";
}

TEST(LintR15, EffectsDeferToCommonRngAcrossTranslationUnits) {
  // common/rng is the sanctioned randomness source: its functions are
  // masked to pure, so calling into it from the protected scope is legal.
  const std::vector<SourceFile> files = {
      {"src/common/rng/ambient_fixture.cpp",
       "unsigned ambientSeed() { return std::random_device{}(); }\n"},
      {"src/sim/sched_fixture.cpp",
       "unsigned ambientSeed();\n"
       "unsigned seedLane() { return ambientSeed() % 64; }\n"},
  };
  const auto findings = lintFiles(files);
  EXPECT_EQ(countRule(findings, "determinism-boundary"), 0u);
  EXPECT_EQ(countRule(findings, "nondeterminism"), 0u);
}

TEST(LintR15, AllowNondeterminismCommentAlsoQuietsTheEffectLeaf) {
  const auto findings = lintSource(
      "src/sim/sched_fixture.cpp",
      "long long seedStamp() {\n"
      "  return time(nullptr);  // avd-lint: allow(nondeterminism)\n"
      "}\n");
  EXPECT_EQ(countRule(findings, "determinism-boundary"), 0u);
  EXPECT_EQ(countRule(findings, "nondeterminism"), 0u);
}

// --- R16 syscall-discipline --------------------------------------------------

TEST(LintR16, FixtureSeedsModuleAndInterruptibleViolations) {
  const auto findings =
      lintFixture("syscall_discipline.cc", "src/campaign/report_fixture.cpp");
  EXPECT_EQ(countRule(findings, "syscall-discipline"), 6u)
      << "4 module-boundary findings (open, read, read, close) + discarded "
         "read + read with no EINTR handling";
  EXPECT_EQ(findings.size(), countRule(findings, "syscall-discipline"))
      << "no other rule fires on this fixture";
}

TEST(LintR16, DesignatedModuleWithEintrRetryIsClean) {
  const auto findings = lintFixture("syscall_discipline_clean.cc",
                                    "src/common/framing_fixture.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(LintR16, DesignatedModuleKeepsOnlyTheInterruptibleFindings) {
  // Inside campaign/journal the module-boundary findings vanish; the two
  // interruptible-call findings are location-independent and stay.
  const auto findings =
      lintFixture("syscall_discipline.cc", "src/campaign/journal_fixture.cpp");
  EXPECT_EQ(countRule(findings, "syscall-discipline"), 2u);
}

// --- R17 durability-ordering -------------------------------------------------

TEST(LintR17, FixtureSeedsBareRenameAndAckBeforePersist) {
  const auto findings = lintFixture("durability_ordering.cc",
                                    "src/campaign/fleet/shard_fixture.cpp");
  EXPECT_EQ(countRule(findings, "durability-ordering"), 3u)
      << "missing fsync-before, missing parent-dir fsync-after, "
         "ack-before-persist";
  EXPECT_EQ(findings.size(), countRule(findings, "durability-ordering"))
      << "no other rule fires on this fixture";
}

TEST(LintR17, BarrieredRenameAndPersistFirstAreClean) {
  const auto findings = lintFixture("durability_ordering_clean.cc",
                                    "src/campaign/fleet/shard_fixture.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(LintR17, DroppingTheParentDirFsyncBreaksTheCleanFixture) {
  // The acceptance property: removing the post-rename directory barrier
  // from a clean writer must fail R17.
  std::string source = readFixture("durability_ordering_clean.cc");
  const std::string barrier = "return fsyncParentDir(path);";
  const std::size_t at = source.find(barrier);
  ASSERT_NE(at, std::string::npos);
  source.replace(at, barrier.size(), "return true;");
  const auto findings =
      lintSource("src/campaign/fleet/shard_fixture.cpp", source);
  EXPECT_EQ(countRule(findings, "durability-ordering"), 1u);
}

TEST(LintR17, RenameOutsideWriterScopeIsNotDurabilityCritical) {
  const auto findings =
      lintFixture("durability_ordering.cc", "src/campaign/report_fixture.cpp");
  EXPECT_EQ(countRule(findings, "durability-ordering"), 0u);
}

// --- R18 blocking-under-lock -------------------------------------------------

TEST(LintR18, FixtureSeedsSleepAndJoinUnderLock) {
  const auto findings = lintFixture("blocking_under_lock.cc",
                                    "src/campaign/fleet/pool_fixture.cpp");
  EXPECT_EQ(countRule(findings, "blocking-under-lock"), 2u)
      << "sleep_for under lock, thread join under lock";
  EXPECT_EQ(findings.size(), countRule(findings, "blocking-under-lock"))
      << "no other rule fires on this fixture";
}

TEST(LintR18, CondvarWaitAndPostGuardJoinAreClean) {
  const auto findings = lintFixture("blocking_under_lock_clean.cc",
                                    "src/campaign/fleet/pool_fixture.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(LintR18, BlockingCalleeResolvedAcrossTranslationUnits) {
  const std::vector<SourceFile> files = {
      {"src/campaign/fleet/wait_fixture.cpp",
       "#include <thread>\n"
       "void settle() {\n"
       "  std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
       "}\n"},
      {"src/campaign/fleet/pool_fixture.cpp",
       "#include <mutex>\n"
       "void settle();\n"
       "std::mutex gate;\n"
       "void tick() {\n"
       "  std::lock_guard<std::mutex> hold(gate);\n"
       "  settle();\n"
       "}\n"},
  };
  const auto findings = lintFiles(files);
  ASSERT_EQ(countRule(findings, "blocking-under-lock"), 1u);
  for (const Finding& f : findings) {
    if (f.rule != "blocking-under-lock") continue;
    EXPECT_EQ(f.file, "src/campaign/fleet/pool_fixture.cpp");
    EXPECT_NE(f.message.find("sleep_for"), std::string::npos)
        << "the witness chain reaches the true blocking leaf";
  }
}

// --- Lexer hardening ---------------------------------------------------------

TEST(LintLexer, RawStringLiteralIsOneTokenAndHidesItsContent) {
  const auto result = lex(
      "src/x/a.cpp",
      "const char* s = R\"avd(++viewChanges \" // not a comment)avd\";\n");
  std::size_t strings = 0;
  for (const Token& token : result.tokens) {
    if (token.kind == TokKind::kString) ++strings;
    EXPECT_NE(token.text, "viewChanges") << "raw content leaked as tokens";
  }
  EXPECT_EQ(strings, 1u);
}

TEST(LintLexer, MalformedRawStringDelimiterRecoversWithoutDesync) {
  // A 17-char delimiter exceeds the C++ cap: the R degrades to an ordinary
  // identifier, the quote to a normal string, and lexing continues.
  const auto result = lex(
      "src/x/a.cpp", "auto s = R\"aaaaaaaaaaaaaaaaa(x)\"; int tail = 1;\n");
  bool sawTail = false;
  for (const Token& token : result.tokens) {
    sawTail = sawTail || token.text == "tail";
  }
  EXPECT_TRUE(sawTail);
}

TEST(LintLexer, DigitSeparatorsStayOneNumberToken) {
  const auto result = lex("src/x/a.cpp", "long big = 1'000'000;\n");
  bool sawNumber = false;
  for (const Token& token : result.tokens) {
    if (token.kind == TokKind::kNumber) {
      sawNumber = true;
      EXPECT_EQ(token.text, "1'000'000");
    }
    EXPECT_NE(token.kind, TokKind::kChar) << "separator misread as char";
  }
  EXPECT_TRUE(sawNumber);
}

TEST(LintLexer, IfConstexprBodyIsStillLinted) {
  const auto findings = lintSource(
      "src/avd/a.cpp",
      "template <bool kFlag>\n"
      "int f() {\n"
      "  if constexpr (kFlag) {\n"
      "    return std::rand();\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(countRule(findings, "nondeterminism"), 1u);
}

// --- Baseline ratchet --------------------------------------------------------

TEST(LintBaseline, JsonRoundTripsThroughParse) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 12, "naked-lock", "call .lock() \"quoted\"", false},
      {"src/b.cpp", 7, "nondeterminism", "rand() seeds\\path", false},
  };
  const auto parsed = parseFindingsJson(toJson(findings));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].file, "src/a.cpp");
  EXPECT_EQ(parsed[0].line, 12u);
  EXPECT_EQ(parsed[0].rule, "naked-lock");
  EXPECT_EQ(parsed[0].message, "call .lock() \"quoted\"");
  EXPECT_EQ(parsed[1].message, "rand() seeds\\path");
}

TEST(LintBaseline, EmptyArrayParsesToNoFindings) {
  EXPECT_TRUE(parseFindingsJson("[]").empty());
  EXPECT_TRUE(parseFindingsJson(" [\n] \n").empty());
}

TEST(LintBaseline, DiffIgnoresLineNumbersButCountsMultiplicity) {
  const std::vector<Finding> current = {
      {"src/a.cpp", 40, "naked-lock", "m", false},   // moved: was line 12
      {"src/a.cpp", 41, "naked-lock", "m", false},   // second copy: new
      {"src/b.cpp", 9, "tainted-size", "t", false},  // brand new
  };
  const std::vector<Finding> baseline = {
      {"src/a.cpp", 12, "naked-lock", "m", false},
  };
  const auto fresh = diffAgainstBaseline(current, baseline);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0].rule, "naked-lock");
  EXPECT_EQ(fresh[1].rule, "tainted-size");
}

TEST(LintBaseline, BaselinedFindingThatWasFixedJustDisappears) {
  const std::vector<Finding> baseline = {
      {"src/a.cpp", 12, "naked-lock", "m", false},
  };
  EXPECT_TRUE(diffAgainstBaseline({}, baseline).empty());
}

}  // namespace
}  // namespace avd::lint
