// Unit tests for the MAC / keychain / authenticator layer, including the
// fault-policy hook the MAC-corruption tool uses.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/authenticator.h"
#include "crypto/keychain.h"
#include "crypto/mac.h"
#include "faultinject/mac_corruptor.h"

namespace avd::crypto {
namespace {

TEST(Mac, DeterministicForSameKeyAndData) {
  const MacKey key{1, 2};
  const util::Bytes data{1, 2, 3, 4, 5};
  EXPECT_EQ(computeMac(key, data), computeMac(key, data));
}

TEST(Mac, DifferentKeysDifferentTags) {
  const util::Bytes data{1, 2, 3};
  EXPECT_NE(computeMac(MacKey{1, 2}, data), computeMac(MacKey{1, 3}, data));
  EXPECT_NE(computeMac(MacKey{1, 2}, data), computeMac(MacKey{2, 2}, data));
}

TEST(Mac, DifferentDataDifferentTags) {
  const MacKey key{7, 8};
  EXPECT_NE(computeMac(key, util::Bytes{1}), computeMac(key, util::Bytes{2}));
  EXPECT_NE(computeMac(key, util::Bytes{}), computeMac(key, util::Bytes{0}));
}

TEST(Mac, LengthMattersEvenWithSharedPrefix) {
  const MacKey key{7, 8};
  const util::Bytes shorter{1, 2, 3};
  const util::Bytes longer{1, 2, 3, 0};
  EXPECT_NE(computeMac(key, shorter), computeMac(key, longer));
}

TEST(Mac, DigestOverloadMatchesByteEncoding) {
  const MacKey key{3, 4};
  const std::uint64_t digest = 0x1122334455667788ull;
  util::Bytes bytes(8);
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(digest >> (8 * i));
  }
  EXPECT_EQ(computeMac(key, digest), computeMac(key, bytes));
}

TEST(Mac, HandlesAllInputLengths) {
  // Exercise every tail length of the 8-byte block cipher-style absorb.
  const MacKey key{11, 13};
  util::Bytes data;
  std::set<MacTag> tags;
  for (int len = 0; len <= 24; ++len) {
    tags.insert(computeMac(key, data));
    data.push_back(static_cast<std::uint8_t>(len));
  }
  EXPECT_EQ(tags.size(), 25u) << "every length yields a distinct tag";
}

TEST(Keychain, SessionKeysAreSymmetric) {
  const Keychain keychain(99);
  for (util::NodeId a = 0; a < 6; ++a) {
    for (util::NodeId b = 0; b < 6; ++b) {
      EXPECT_EQ(keychain.sessionKey(a, b), keychain.sessionKey(b, a));
    }
  }
}

TEST(Keychain, DistinctPairsDistinctKeys) {
  const Keychain keychain(99);
  std::set<std::pair<std::uint64_t, std::uint64_t>> keys;
  for (util::NodeId a = 0; a < 10; ++a) {
    for (util::NodeId b = a; b < 10; ++b) {
      const MacKey key = keychain.sessionKey(a, b);
      keys.insert({key.k0, key.k1});
    }
  }
  EXPECT_EQ(keys.size(), 55u);  // C(10,2) + 10 self-pairs
}

TEST(Keychain, DifferentMasterSeedsDifferentKeys) {
  EXPECT_NE(Keychain(1).sessionKey(0, 1).k0, Keychain(2).sessionKey(0, 1).k0);
}

TEST(MacService, PeerCanVerifyGeneratedTag) {
  const Keychain keychain(5);
  MacService alice(0, &keychain);
  MacService bob(1, &keychain);
  const std::uint64_t digest = 1234;
  const MacTag tag = alice.generate(1, digest);
  EXPECT_TRUE(bob.verify(0, digest, tag));
  EXPECT_FALSE(bob.verify(0, digest + 1, tag));
  EXPECT_FALSE(bob.verify(2, digest, tag)) << "wrong claimed sender";
}

TEST(MacService, ThirdPartyCannotVerify) {
  const Keychain keychain(5);
  MacService alice(0, &keychain);
  MacService carol(2, &keychain);
  const MacTag tag = alice.generate(1, 99);
  // Carol checks with her own session key for Alice — different key, so the
  // tag addressed to Bob fails (MACs provide no third-party verification).
  EXPECT_FALSE(carol.verify(0, 99, tag));
}

TEST(MacService, CountsGenerateCalls) {
  const Keychain keychain(5);
  MacService service(0, &keychain);
  EXPECT_EQ(service.generateCallCount(), 0u);
  service.generate(1, 1);
  service.generate(2, 2);
  EXPECT_EQ(service.generateCallCount(), 2u);
  service.authenticate(3, 4);
  EXPECT_EQ(service.generateCallCount(), 6u);
}

TEST(MacService, AuthenticatorVerifiesPerReplica) {
  const Keychain keychain(5);
  MacService client(10, &keychain);
  const std::uint64_t digest = 777;
  const Authenticator auth = client.authenticate(digest, 4);
  ASSERT_EQ(auth.tags.size(), 4u);
  for (util::NodeId replica = 0; replica < 4; ++replica) {
    MacService service(replica, &keychain);
    EXPECT_TRUE(service.verify(10, digest, auth.tags[replica]));
    // Another replica's entry never verifies for this replica.
    EXPECT_FALSE(
        service.verify(10, digest, auth.tags[(replica + 1) % 4]));
  }
}

TEST(MacService, FaultPolicyCorruptsSelectedCalls) {
  const Keychain keychain(5);
  MacService client(10, &keychain);
  // Corrupt calls 1 and 3 (mod 4): mask 0b1010 over width 4.
  client.setFaultPolicy(std::make_shared<fi::MacCorruptionPolicy>(0b1010, 4));
  const Authenticator auth = client.authenticate(42, 4);
  for (util::NodeId replica = 0; replica < 4; ++replica) {
    MacService service(replica, &keychain);
    const bool expectValid = (replica % 2) == 0;
    EXPECT_EQ(service.verify(10, 42, auth.tags[replica]), expectValid)
        << "replica " << replica;
  }
}

TEST(MacService, FaultPolicyPatternCyclesAcrossRounds) {
  const Keychain keychain(5);
  MacService client(10, &keychain);
  // 12-bit mask corrupting only round 1 (calls 4..7 of each 12-call cycle).
  client.setFaultPolicy(std::make_shared<fi::MacCorruptionPolicy>(0x0F0, 12));
  MacService replica0(0, &keychain);

  const Authenticator round0 = client.authenticate(1, 4);  // calls 0-3
  const Authenticator round1 = client.authenticate(1, 4);  // calls 4-7
  const Authenticator round2 = client.authenticate(1, 4);  // calls 8-11
  const Authenticator round3 = client.authenticate(1, 4);  // calls 12-15 = r0

  EXPECT_TRUE(replica0.verify(10, 1, round0.tags[0]));
  EXPECT_FALSE(replica0.verify(10, 1, round1.tags[0]));
  EXPECT_TRUE(replica0.verify(10, 1, round2.tags[0]));
  EXPECT_TRUE(replica0.verify(10, 1, round3.tags[0]));
}

TEST(MacService, ClearingFaultPolicyRestoresHonesty) {
  const Keychain keychain(5);
  MacService client(10, &keychain);
  MacService replica0(0, &keychain);
  client.setFaultPolicy(std::make_shared<fi::MacCorruptionPolicy>(0xFFF, 12));
  EXPECT_FALSE(replica0.verify(10, 8, client.generate(0, 8)));
  client.setFaultPolicy(nullptr);
  EXPECT_TRUE(replica0.verify(10, 8, client.generate(0, 8)));
}

TEST(MacCorruptionPolicy, CountsObservedCalls) {
  fi::MacCorruptionPolicy policy(0, 12);
  for (int i = 0; i < 5; ++i) policy.shouldCorrupt(i, 0);
  EXPECT_EQ(policy.observedCalls(), 5u);
  EXPECT_EQ(policy.mask(), 0u);
  EXPECT_EQ(policy.width(), 12u);
}

TEST(MacCorruptionPolicy, ZeroWidthIsClampedToOne) {
  fi::MacCorruptionPolicy policy(1, 0);
  EXPECT_TRUE(policy.shouldCorrupt(0, 0));
  EXPECT_TRUE(policy.shouldCorrupt(7, 0)) << "width 1: every call is bit 0";
}

}  // namespace
}  // namespace avd::crypto
