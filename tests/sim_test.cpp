// Unit tests for the discrete-event simulation engine and network fabric.
#include <gtest/gtest.h>

#include <vector>

#include "faultinject/network_faults.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace avd::sim {
namespace {

// --- Simulator ------------------------------------------------------------------

TEST(Simulator, ExecutesInTimestampOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule(30, [&] { order.push_back(3); });
  simulator.schedule(10, [&] { order.push_back(1); });
  simulator.schedule(20, [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), 30);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule(5, [&order, i] { order.push_back(i); });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CancelledEventsDoNotFire) {
  Simulator simulator;
  bool fired = false;
  const TimerId id = simulator.schedule(10, [&] { fired = true; });
  simulator.cancel(id);
  simulator.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.pendingEvents(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndTolerant) {
  Simulator simulator;
  const TimerId id = simulator.schedule(1, [] {});
  simulator.cancel(id);
  simulator.cancel(id);       // double cancel: no-op
  simulator.cancel(0);        // invalid id: no-op
  simulator.cancel(99999);    // never-issued id: no-op
  simulator.run();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator simulator;
  std::vector<Time> fired;
  for (Time t : {5, 10, 15, 20}) {
    simulator.schedule(t, [&fired, &simulator] {
      fired.push_back(simulator.now());
    });
  }
  simulator.runUntil(12);
  EXPECT_EQ(fired, (std::vector<Time>{5, 10}));
  EXPECT_EQ(simulator.now(), 12);
  simulator.runUntil(100);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(simulator.now(), 100);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) simulator.schedule(10, chain);
  };
  simulator.schedule(0, chain);
  simulator.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(simulator.now(), 40);
}

TEST(Simulator, RunHonorsMaxEvents) {
  Simulator simulator;
  int count = 0;
  for (int i = 0; i < 10; ++i) simulator.schedule(i, [&] { ++count; });
  EXPECT_EQ(simulator.run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, DeterministicRngStream) {
  Simulator a(77);
  Simulator b(77);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.rng().next(), b.rng().next());
}

// --- Network -------------------------------------------------------------------

/// Records every delivery for assertions.
class ProbeNode final : public Node {
 public:
  explicit ProbeNode(util::NodeId id) : Node(id) {}

  void receive(util::NodeId from, const MessagePtr& message) override {
    deliveries.push_back({from, message, now()});
  }

  struct Delivery {
    util::NodeId from;
    MessagePtr message;
    Time when;
  };
  std::vector<Delivery> deliveries;

  using Node::send;      // expose for tests
  using Node::setTimer;  // expose for tests
};

class TestPayload final : public Message {
 public:
  explicit TestPayload(int tag) : tag_(tag) {}
  std::uint32_t kind() const noexcept override { return 0xBEEF; }
  int tag() const noexcept { return tag_; }

 private:
  int tag_;
};

struct NetFixture : ::testing::Test {
  NetFixture() : simulator(1), network(&simulator, LinkModel{msec(2), 0}) {
    for (util::NodeId id = 0; id < 3; ++id) {
      nodes.push_back(std::make_unique<ProbeNode>(id));
      network.registerNode(nodes.back().get());
    }
  }

  Simulator simulator;
  Network network;
  std::vector<std::unique_ptr<ProbeNode>> nodes;
};

TEST_F(NetFixture, DeliversAfterBaseLatency) {
  nodes[0]->send(1, std::make_shared<TestPayload>(7));
  simulator.run();
  ASSERT_EQ(nodes[1]->deliveries.size(), 1u);
  EXPECT_EQ(nodes[1]->deliveries[0].from, 0u);
  EXPECT_EQ(nodes[1]->deliveries[0].when, msec(2));
  EXPECT_EQ(nodes[2]->deliveries.size(), 0u);
}

TEST_F(NetFixture, FifoPerLinkWithoutJitter) {
  for (int i = 0; i < 5; ++i) {
    nodes[0]->send(1, std::make_shared<TestPayload>(i));
  }
  simulator.run();
  ASSERT_EQ(nodes[1]->deliveries.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto* payload = static_cast<const TestPayload*>(
        nodes[1]->deliveries[i].message.get());
    EXPECT_EQ(payload->tag(), i);
  }
}

TEST_F(NetFixture, CountersTrackTraffic) {
  nodes[0]->send(1, std::make_shared<TestPayload>(0));
  nodes[1]->send(2, std::make_shared<TestPayload>(1));
  simulator.run();
  EXPECT_EQ(network.counters().sent, 2u);
  EXPECT_EQ(network.counters().delivered, 2u);
  EXPECT_EQ(network.counters().droppedByFaults, 0u);
  EXPECT_GT(network.counters().bytesSent, 0u);
}

TEST_F(NetFixture, DeadReceiverDropsDelivery) {
  nodes[1]->setAlive(false);
  nodes[0]->send(1, std::make_shared<TestPayload>(0));
  simulator.run();
  EXPECT_EQ(nodes[1]->deliveries.size(), 0u);
  EXPECT_EQ(network.counters().droppedDeadNode, 1u);
}

TEST_F(NetFixture, DeadSenderCannotSend) {
  nodes[0]->setAlive(false);
  nodes[0]->send(1, std::make_shared<TestPayload>(0));
  simulator.run();
  EXPECT_EQ(nodes[1]->deliveries.size(), 0u);
}

TEST_F(NetFixture, CrashBetweenSendAndDeliveryDrops) {
  nodes[0]->send(1, std::make_shared<TestPayload>(0));
  simulator.schedule(msec(1), [&] { nodes[1]->setAlive(false); });
  simulator.run();
  EXPECT_EQ(nodes[1]->deliveries.size(), 0u);
}

TEST_F(NetFixture, TimersSuppressedOnDeadNode) {
  bool fired = false;
  nodes[0]->setTimer(msec(5), [&] { fired = true; });
  simulator.schedule(msec(1), [&] { nodes[0]->setAlive(false); });
  simulator.run();
  EXPECT_FALSE(fired);
}

// Regression: a timer armed before a crash must not fire inside the
// restarted process, even though the node is alive again when it expires.
TEST_F(NetFixture, StaleTimerSuppressedAcrossRestart) {
  bool staleFired = false;
  bool freshFired = false;
  nodes[0]->setTimer(msec(10), [&] { staleFired = true; });
  simulator.schedule(msec(2), [&] { nodes[0]->crash(); });
  simulator.schedule(msec(4), [&] {
    nodes[0]->restart();
    // A timer armed by the new incarnation fires normally.
    nodes[0]->setTimer(msec(10), [&] { freshFired = true; });
  });
  simulator.run();
  EXPECT_FALSE(staleFired);
  EXPECT_TRUE(freshFired);
  EXPECT_EQ(nodes[0]->incarnation(), 1u);
  EXPECT_EQ(nodes[0]->restarts(), 1u);
}

TEST_F(NetFixture, RestartIsNoOpOnLiveNodeAndCrashIsIdempotent) {
  nodes[0]->restart();  // live node: nothing happens
  EXPECT_EQ(nodes[0]->incarnation(), 0u);
  nodes[0]->crash();
  nodes[0]->crash();
  nodes[0]->restart();
  EXPECT_EQ(nodes[0]->incarnation(), 1u);
  EXPECT_TRUE(nodes[0]->alive());
}

TEST_F(NetFixture, RestartedNodeReceivesAgain) {
  nodes[1]->crash();
  nodes[0]->send(1, std::make_shared<TestPayload>(0));  // dropped: dead
  simulator.run();
  EXPECT_EQ(nodes[1]->deliveries.size(), 0u);
  nodes[1]->restart();
  nodes[0]->send(1, std::make_shared<TestPayload>(1));
  simulator.run();
  ASSERT_EQ(nodes[1]->deliveries.size(), 1u);
}

// onRestart runs after the incarnation bump, so timers it arms belong to
// the new incarnation and fire normally.
TEST(NodeLifecycle, OnRestartUpcallSeesNewIncarnation) {
  class RecoveringNode final : public Node {
   public:
    explicit RecoveringNode(util::NodeId id) : Node(id) {}
    void receive(util::NodeId, const MessagePtr&) override {}
    void onRestart() override {
      incarnationAtUpcall = incarnation();
      setTimer(msec(1), [this] { recoveryTimerFired = true; });
    }
    using Node::setTimer;
    uint64_t incarnationAtUpcall = 0;
    bool recoveryTimerFired = false;
  };

  Simulator simulator(1);
  Network network(&simulator, LinkModel{msec(1), 0});
  RecoveringNode node(0);
  network.registerNode(&node);
  node.crash();
  node.restart();
  simulator.run();
  EXPECT_EQ(node.incarnationAtUpcall, 1u);
  EXPECT_TRUE(node.recoveryTimerFired);
}

TEST_F(NetFixture, RemoveFaultRestoresDelivery) {
  auto drop = std::make_shared<fi::DropFault>(1.0, fi::FlowFilter{});
  network.addFault(drop);
  nodes[0]->send(1, std::make_shared<TestPayload>(0));  // dropped
  simulator.run();
  EXPECT_EQ(nodes[1]->deliveries.size(), 0u);
  EXPECT_TRUE(network.removeFault(drop));
  EXPECT_FALSE(network.removeFault(drop));  // already gone
  nodes[0]->send(1, std::make_shared<TestPayload>(1));
  simulator.run();
  EXPECT_EQ(nodes[1]->deliveries.size(), 1u);
}

TEST_F(NetFixture, DropFaultFiltersFlows) {
  auto drop = std::make_shared<fi::DropFault>(
      1.0, fi::FlowFilter{.fromNodes = {0}, .toNodes = {}});
  network.addFault(drop);
  nodes[0]->send(1, std::make_shared<TestPayload>(0));  // dropped
  nodes[1]->send(0, std::make_shared<TestPayload>(1));  // delivered
  simulator.run();
  EXPECT_EQ(nodes[1]->deliveries.size(), 0u);
  EXPECT_EQ(nodes[0]->deliveries.size(), 1u);
  EXPECT_EQ(drop->dropped(), 1u);
  EXPECT_EQ(network.counters().droppedByFaults, 1u);
}

TEST_F(NetFixture, DelayFaultAddsLatency) {
  network.addFault(std::make_shared<fi::DelayFault>(msec(10)));
  nodes[0]->send(1, std::make_shared<TestPayload>(0));
  simulator.run();
  ASSERT_EQ(nodes[1]->deliveries.size(), 1u);
  EXPECT_EQ(nodes[1]->deliveries[0].when, msec(12));
}

TEST_F(NetFixture, PartitionCutsBothDirectionsAndHeals) {
  auto partition = std::make_shared<fi::PartitionFault>(
      std::set<util::NodeId>{0}, std::set<util::NodeId>{1});
  network.addFault(partition);
  nodes[0]->send(1, std::make_shared<TestPayload>(0));
  nodes[1]->send(0, std::make_shared<TestPayload>(1));
  nodes[0]->send(2, std::make_shared<TestPayload>(2));  // outside partition
  simulator.run();
  EXPECT_EQ(nodes[0]->deliveries.size(), 0u);
  EXPECT_EQ(nodes[1]->deliveries.size(), 0u);
  EXPECT_EQ(nodes[2]->deliveries.size(), 1u);

  partition->heal();
  nodes[0]->send(1, std::make_shared<TestPayload>(3));
  simulator.run();
  EXPECT_EQ(nodes[1]->deliveries.size(), 1u);
}

TEST(NetworkJitter, JitterBoundsDeliveryTime) {
  Simulator simulator(3);
  Network network(&simulator, LinkModel{msec(2), msec(1)});
  ProbeNode sender(0);
  ProbeNode receiver(1);
  network.registerNode(&sender);
  network.registerNode(&receiver);
  for (int i = 0; i < 100; ++i) {
    sender.send(1, std::make_shared<TestPayload>(i));
  }
  simulator.run();
  ASSERT_EQ(receiver.deliveries.size(), 100u);
  for (const auto& delivery : receiver.deliveries) {
    EXPECT_GE(delivery.when, msec(2));
    EXPECT_LE(delivery.when, msec(3));
  }
}

TEST(NetworkDeterminism, SameSeedSameDeliverySchedule) {
  const auto run = [](std::uint64_t seed) {
    Simulator simulator(seed);
    Network network(&simulator, LinkModel{msec(1), msec(2)});
    ProbeNode sender(0);
    ProbeNode receiver(1);
    network.registerNode(&sender);
    network.registerNode(&receiver);
    for (int i = 0; i < 50; ++i) {
      sender.send(1, std::make_shared<TestPayload>(i));
    }
    simulator.run();
    std::vector<Time> times;
    for (const auto& delivery : receiver.deliveries) {
      times.push_back(delivery.when);
    }
    return times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace avd::sim
