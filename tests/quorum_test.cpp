// Tests for the quorum KV store (the second target system) and the AVD
// executor that assesses its API.
#include <gtest/gtest.h>

#include "avd/controller.h"
#include "avd/quorum_executor.h"
#include "faultinject/network_faults.h"
#include "quorum/deployment.h"

namespace avd::quorum {
namespace {

QuorumConfig smallConfig() {
  QuorumConfig config;
  config.replicas = 5;
  config.readQuorum = 3;
  config.writeQuorum = 3;
  config.honestClients = 6;
  config.warmup = sim::msec(300);
  config.measure = sim::sec(2);
  config.seed = 77;
  return config;
}

TEST(QuorumStore, HonestWorkloadReadsItsOwnWrites) {
  const QuorumResult result = runQuorumScenario(smallConfig());
  EXPECT_GT(result.opsPerSec, 500.0);
  EXPECT_EQ(result.staleReads, 0u)
      << "read quorums must always see the latest acknowledged write";
  EXPECT_GT(result.honestReads, 100u);
  EXPECT_LT(result.avgLatencySec, 0.02);
}

TEST(QuorumStore, QuorumOverlapSurvivesMessageLoss) {
  QuorumConfig config = smallConfig();
  QuorumDeployment deployment(config);
  deployment.network().addFault(std::make_shared<fi::DropFault>(0.05));
  const QuorumResult result = deployment.run();
  EXPECT_EQ(result.staleReads, 0u)
      << "loss slows operations but never breaks read-your-writes";
  EXPECT_GT(result.opsPerSec, 100.0);
}

TEST(QuorumStore, OneSilentReplicaIsInsideTheSlack) {
  QuorumConfig config = smallConfig();
  QReplicaBehavior silent;
  silent.silent = true;
  config.replicaBehaviors[4] = silent;
  const QuorumResult result = runQuorumScenario(config);
  EXPECT_GT(result.opsPerSec, 500.0) << "N - W = 2 replicas may vanish";
  EXPECT_EQ(result.staleReads, 0u);
}

TEST(QuorumStore, QuorumStarvationHaltsProgress) {
  QuorumConfig config = smallConfig();
  QReplicaBehavior silent;
  silent.silent = true;
  // N - W + 1 = 3 silent replicas: write quorums can never assemble.
  config.replicaBehaviors[2] = silent;
  config.replicaBehaviors[3] = silent;
  config.replicaBehaviors[4] = silent;
  const QuorumResult result = runQuorumScenario(config);
  EXPECT_LT(result.opsPerSec, 10.0);
}

TEST(QuorumStore, TimestampInflationShadowsHonestWrites) {
  // The API flaw: one malicious CLIENT writes with far-future versions;
  // last-write-wins then hides every honest write to the poisoned keys.
  QuorumConfig config = smallConfig();
  config.maliciousClients = 1;
  config.maliciousBehavior.timestampInflation = sim::sec(1u << 20);
  config.maliciousBehavior.victimKeys = config.honestClients;
  config.maliciousBehavior.poisonInterval = sim::msec(30);
  const QuorumResult result = runQuorumScenario(config);
  EXPECT_GT(result.staleFraction, 0.9)
      << "nearly every verified read must observe poisoned data";
  EXPECT_GT(result.opsPerSec, 100.0)
      << "the attack is silent: throughput looks perfectly healthy";
}

TEST(QuorumStore, SmallInflationOnlyPoisonsTransiently) {
  // Inflation below the write-read turnaround time loses LWW against the
  // client's next honest write: damage needs real lead.
  QuorumConfig config = smallConfig();
  config.maliciousClients = 1;
  config.maliciousBehavior.timestampInflation = sim::usec(1);
  config.maliciousBehavior.victimKeys = config.honestClients;
  const QuorumResult result = runQuorumScenario(config);
  EXPECT_LT(result.staleFraction, 0.2);
}

TEST(QuorumStore, FabricatingReplicaPoisonsReadsWithoutAuth) {
  QuorumConfig config = smallConfig();
  QReplicaBehavior fabricator;
  fabricator.fabricateReads = true;
  config.replicaBehaviors[0] = fabricator;
  const QuorumResult result = runQuorumScenario(config);
  // The fabricator sits in many read quorums; its far-future version wins
  // reconciliation every time it does.
  EXPECT_GT(result.staleFraction, 0.3);
}

TEST(QuorumStore, VictimSelectionLimitsTheBlastRadius) {
  QuorumConfig config = smallConfig();
  config.maliciousClients = 1;
  config.maliciousBehavior.timestampInflation = sim::sec(1u << 20);
  config.maliciousBehavior.victimKeys = 1;  // only the first honest client
  QuorumDeployment deployment(config);
  deployment.run();
  EXPECT_GT(deployment.honestClient(0).stats().staleReads, 10u);
  for (std::uint32_t i = 1; i < config.honestClients; ++i) {
    EXPECT_EQ(deployment.honestClient(i).stats().staleReads, 0u)
        << "client " << i;
  }
}

}  // namespace
}  // namespace avd::quorum

namespace avd::core {
namespace {

TEST(QuorumExecutor, HonestPointHasZeroImpact) {
  QuorumApiExecutor executor(makeQuorumApiHyperspace(), {});
  const Outcome outcome = executor.execute(Point{0, 0, 0});
  EXPECT_LT(outcome.impact, 0.1);
}

TEST(QuorumExecutor, InflationPointScoresCorrectnessDamage) {
  QuorumApiExecutor executor(makeQuorumApiHyperspace(), {});
  // 2^30 us ~ 18 minutes of lead, all 8 victim keys.
  const Outcome outcome = executor.execute(Point{30, 7, 0});
  EXPECT_GT(outcome.impact, 0.9);
  EXPECT_GT(outcome.throughputRps, 100.0)
      << "impact must come from staleness, not throughput";
}

TEST(QuorumExecutor, StarvationPointScoresAvailabilityDamage) {
  QuorumApiExecutor executor(makeQuorumApiHyperspace(), {});
  const Outcome outcome = executor.execute(Point{0, 0, 2});
  EXPECT_GT(outcome.impact, 0.9);
}

TEST(QuorumExecutor, AvdDiscoversTheTimestampApiFlaw) {
  // The §2 API-assessment story end-to-end: the controller, knowing only
  // the knobs, finds that client-supplied timestamps enable total data
  // poisoning.
  QuorumApiExecutor executor(makeQuorumApiHyperspace(), {});
  Controller controller(executor, defaultPlugins(executor.space()),
                        ControllerOptions{}, 17);
  controller.runTests(25);
  EXPECT_GT(controller.maxImpact(), 0.9);
}

}  // namespace
}  // namespace avd::core
