// Wire-codec tests: per-kind round trips, golden-format stability,
// malformed-input rejection, a randomized decode fuzz sweep, and the
// byte-level WireFuzzFault tool.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "faultinject/wire_fuzz.h"
#include "pbft/deployment.h"
#include "pbft/message.h"
#include "pbft/wire.h"

namespace avd::pbft {
namespace {

RequestPtr sampleRequest(util::NodeId client = 9, util::RequestId ts = 3) {
  auto request = std::make_shared<RequestMessage>();
  request->client = client;
  request->timestamp = ts;
  request->operation = {1, 2, 3};
  request->digest = requestDigest(client, ts, request->operation);
  request->auth.tags = {11, 22, 33, 44};
  return request;
}

void expectRequestEq(const RequestMessage& a, const RequestMessage& b) {
  EXPECT_EQ(a.client, b.client);
  EXPECT_EQ(a.timestamp, b.timestamp);
  EXPECT_EQ(a.operation, b.operation);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.auth.tags, b.auth.tags);
}

template <typename M>
std::shared_ptr<const M> roundTrip(const M& message) {
  const util::Bytes frame = wire::encode(message);
  EXPECT_FALSE(frame.empty());
  EXPECT_EQ(frame.size(), wire::encodedSize(message));
  const sim::MessagePtr decoded = wire::decode(frame);
  EXPECT_NE(decoded, nullptr);
  if (decoded == nullptr) return nullptr;
  EXPECT_EQ(decoded->kind(), message.kind());
  return std::static_pointer_cast<const M>(decoded);
}

TEST(Wire, RequestRoundTrip) {
  const RequestPtr request = sampleRequest();
  const auto decoded = roundTrip(*request);
  ASSERT_NE(decoded, nullptr);
  expectRequestEq(*decoded, *request);
}

TEST(Wire, PrePrepareRoundTripWithBatch) {
  PrePrepareMessage prePrepare;
  prePrepare.view = 4;
  prePrepare.seq = 77;
  prePrepare.batch = {sampleRequest(9, 1), sampleRequest(10, 2)};
  prePrepare.digest = batchDigest(prePrepare.batch);
  prePrepare.replica = 2;
  prePrepare.auth.tags = {5, 6, 7, 8};
  const auto decoded = roundTrip(prePrepare);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->view, 4u);
  EXPECT_EQ(decoded->seq, 77u);
  EXPECT_EQ(decoded->digest, prePrepare.digest);
  ASSERT_EQ(decoded->batch.size(), 2u);
  expectRequestEq(*decoded->batch[1], *prePrepare.batch[1]);
}

TEST(Wire, EmptyBatchPrePrepareRoundTrips) {
  PrePrepareMessage nullRequest;
  nullRequest.view = 1;
  nullRequest.seq = 5;
  nullRequest.digest = batchDigest({});
  nullRequest.replica = 1;
  nullRequest.auth.tags = {1, 2, 3, 4};
  const auto decoded = roundTrip(nullRequest);
  ASSERT_NE(decoded, nullptr);
  EXPECT_TRUE(decoded->batch.empty());
}

TEST(Wire, PrepareAndCommitRoundTrip) {
  PrepareMessage prepare;
  prepare.view = 2;
  prepare.seq = 9;
  prepare.digest = 0xABCD;
  prepare.replica = 3;
  prepare.auth.tags = {9, 8, 7, 6};
  const auto decodedPrepare = roundTrip(prepare);
  ASSERT_NE(decodedPrepare, nullptr);
  EXPECT_EQ(decodedPrepare->digest, 0xABCDu);

  CommitMessage commit;
  commit.view = 2;
  commit.seq = 9;
  commit.digest = 0xABCD;
  commit.replica = 3;
  commit.auth.tags = {9, 8, 7, 6};
  const auto decodedCommit = roundTrip(commit);
  ASSERT_NE(decodedCommit, nullptr);
  EXPECT_EQ(decodedCommit->seq, 9u);
}

TEST(Wire, ReplyRoundTrip) {
  ReplyMessage reply;
  reply.view = 1;
  reply.client = 12;
  reply.timestamp = 55;
  reply.replica = 0;
  reply.result = {4, 5, 6, 7};
  reply.resultDigest = 0x1234;
  reply.mac = 0x5678;
  const auto decoded = roundTrip(reply);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->result, reply.result);
  EXPECT_EQ(decoded->mac, reply.mac);
}

TEST(Wire, CheckpointStatusAndStateMessagesRoundTrip) {
  CheckpointMessage checkpoint;
  checkpoint.seq = 128;
  checkpoint.stateDigest = 0xFEED;
  checkpoint.replica = 1;
  checkpoint.auth.tags = {1, 2, 3, 4};
  EXPECT_NE(roundTrip(checkpoint), nullptr);

  StatusMessage status;
  status.view = 3;
  status.lastExecuted = 500;
  status.replica = 2;
  status.auth.tags = {4, 3, 2, 1};
  const auto decodedStatus = roundTrip(status);
  ASSERT_NE(decodedStatus, nullptr);
  EXPECT_EQ(decodedStatus->lastExecuted, 500u);

  StateRequestMessage stateRequest;
  stateRequest.seq = 256;
  stateRequest.replica = 3;
  stateRequest.mac = 99;
  EXPECT_NE(roundTrip(stateRequest), nullptr);

  StateResponseMessage stateResponse;
  stateResponse.seq = 256;
  stateResponse.stateDigest = 0xD1D1;
  stateResponse.snapshot = {1, 1, 2, 3, 5, 8};
  stateResponse.clientTimestamps = {{4, 10}, {5, 11}};
  stateResponse.replica = 0;
  stateResponse.mac = 77;
  const auto decodedState = roundTrip(stateResponse);
  ASSERT_NE(decodedState, nullptr);
  EXPECT_EQ(decodedState->clientTimestamps, stateResponse.clientTimestamps);
  EXPECT_EQ(decodedState->snapshot, stateResponse.snapshot);
}

TEST(Wire, ViewChangeAndNewViewRoundTrip) {
  ViewChangeMessage viewChange;
  viewChange.newView = 6;
  viewChange.stableSeq = 384;
  PreparedProof proof;
  proof.seq = 390;
  proof.view = 5;
  proof.batch = {sampleRequest()};
  proof.digest = batchDigest(proof.batch);
  viewChange.prepared.push_back(proof);
  viewChange.replica = 2;
  viewChange.auth.tags = {1, 2, 3, 4};
  const auto decodedVc = roundTrip(viewChange);
  ASSERT_NE(decodedVc, nullptr);
  ASSERT_EQ(decodedVc->prepared.size(), 1u);
  EXPECT_EQ(decodedVc->prepared[0].digest, proof.digest);
  EXPECT_EQ(viewChangeDigest(*decodedVc), viewChangeDigest(viewChange))
      << "authenticated content survives the round trip";

  NewViewMessage newView;
  newView.view = 6;
  auto prePrepare = std::make_shared<PrePrepareMessage>();
  prePrepare->view = 6;
  prePrepare->seq = 390;
  prePrepare->batch = proof.batch;
  prePrepare->digest = proof.digest;
  prePrepare->replica = 2;
  prePrepare->auth.tags = {5, 5, 5, 5};
  newView.prePrepares.push_back(prePrepare);
  newView.replica = 2;
  newView.auth.tags = {6, 6, 6, 6};
  const auto decodedNv = roundTrip(newView);
  ASSERT_NE(decodedNv, nullptr);
  EXPECT_EQ(newViewDigest(*decodedNv), newViewDigest(newView));
}

TEST(Wire, SyncSeqRoundTrip) {
  SyncSeqMessage sync;
  sync.seq = 41;
  sync.batch = {sampleRequest()};
  sync.digest = batchDigest(sync.batch);
  sync.replica = 1;
  sync.mac = 0xAB;
  const auto decoded = roundTrip(sync);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(syncSeqDigest(*decoded), syncSeqDigest(sync));
}

TEST(Wire, GoldenRequestEncoding) {
  // Format stability: changing the wire layout must be a conscious act.
  auto request = std::make_shared<RequestMessage>();
  request->client = 1;
  request->timestamp = 2;
  request->operation = {0xAA};
  request->digest = 0x0102030405060708;
  request->auth.tags = {0x11, 0x22};
  EXPECT_EQ(util::toHex(wire::encode(*request)),
            "01000000"                  // kind = kRequest
            "01000000"                  // client
            "0200000000000000"          // timestamp
            "00"                        // readOnly = false
            "01000000" "aa"             // operation blob
            "0807060504030201"          // digest (little-endian)
            "02000000"                  // 2 auth tags
            "1100000000000000"
            "2200000000000000");
}

TEST(Wire, TruncationAtEveryByteIsRejected) {
  PrePrepareMessage prePrepare;
  prePrepare.view = 1;
  prePrepare.seq = 2;
  prePrepare.batch = {sampleRequest()};
  prePrepare.digest = batchDigest(prePrepare.batch);
  prePrepare.replica = 0;
  prePrepare.auth.tags = {1, 2, 3, 4};
  const util::Bytes frame = wire::encode(prePrepare);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_EQ(wire::decode(std::span(frame.data(), len)), nullptr)
        << "truncation at byte " << len;
  }
}

TEST(Wire, TrailingGarbageIsRejected) {
  util::Bytes frame = wire::encode(*sampleRequest());
  frame.push_back(0);
  EXPECT_EQ(wire::decode(frame), nullptr);
}

TEST(Wire, AbsurdContainerLengthsAreRejected) {
  util::ByteWriter writer;
  writer.u32(static_cast<std::uint32_t>(MsgKind::kPrePrepare));
  writer.u64(0);            // view
  writer.u64(1);            // seq
  writer.u64(0);            // digest
  writer.u32(0);            // replica
  writer.u32(0xFFFFFFFF);   // batch count: absurd
  EXPECT_EQ(wire::decode(writer.bytes()), nullptr);
}

TEST(Wire, RandomBytesNeverCrashTheDecoder) {
  util::Rng rng(55);
  for (int i = 0; i < 20000; ++i) {
    util::Bytes garbage(rng.below(120));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.below(256));
    }
    // Totality is the assertion: no crash, no UB, result irrelevant.
    (void)wire::decode(garbage);
  }
}

TEST(Wire, MutatedValidFramesNeverCrashTheDecoder) {
  // Structured fuzz: start from valid frames, flip bits.
  util::Rng rng(56);
  PrePrepareMessage prePrepare;
  prePrepare.view = 1;
  prePrepare.seq = 2;
  prePrepare.batch = {sampleRequest(9, 1), sampleRequest(10, 2)};
  prePrepare.digest = batchDigest(prePrepare.batch);
  prePrepare.replica = 0;
  prePrepare.auth.tags = {1, 2, 3, 4};
  const util::Bytes original = wire::encode(prePrepare);
  int parsedCount = 0;
  for (int i = 0; i < 20000; ++i) {
    util::Bytes frame = original;
    const std::uint64_t bit = rng.below(frame.size() * 8);
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    if (wire::decode(frame) != nullptr) ++parsedCount;
  }
  EXPECT_GT(parsedCount, 0) << "single payload-bit flips usually reparse";
}

}  // namespace
}  // namespace avd::pbft

namespace avd::fi {
namespace {

TEST(WireFuzzFault, ByteLevelFuzzingIsAbsorbed) {
  pbft::DeploymentConfig config;
  config.pbft.f = 1;
  config.correctClients = 5;
  config.warmup = sim::msec(300);
  config.measure = sim::sec(2);
  config.seed = 61;
  pbft::Deployment deployment(config);
  auto fuzz = std::make_shared<WireFuzzFault>(0.03);
  deployment.network().addFault(fuzz);
  const pbft::RunResult result = deployment.run();

  EXPECT_GT(fuzz->flipped(), 50u);
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_EQ(result.maxView, 0u);
  EXPECT_GT(result.correctCompleted, 40u)
      << "byte-level blind fuzzing cannot do real damage either";
}

}  // namespace
}  // namespace avd::fi
