# Sanitizer build matrix support.
#
# AVD_SANITIZE is a semicolon list drawn from {address, undefined, thread,
# leak}; e.g.
#   cmake -B build-asan -DAVD_SANITIZE="address;undefined"
#   cmake -B build-tsan -DAVD_SANITIZE=thread
# Flags are applied globally (compile + link) so every target in the tree —
# libraries, tests, benches, examples, tools — is instrumented; a partially
# sanitized binary produces false negatives.
#
# AVD_WERROR turns the existing -Wall -Wextra into hard errors; CI builds
# with it ON so new warnings cannot land.

set(AVD_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers: address;undefined;thread;leak")
option(AVD_WERROR "Treat compiler warnings as errors" OFF)

if(AVD_SANITIZE)
  set(_avd_san_flags "")
  set(_avd_has_address FALSE)
  set(_avd_has_thread FALSE)
  foreach(_san IN LISTS AVD_SANITIZE)
    if(_san STREQUAL "address")
      list(APPEND _avd_san_flags -fsanitize=address)
      set(_avd_has_address TRUE)
    elseif(_san STREQUAL "undefined")
      # Recoverable UB would let a test pass while still being wrong;
      # make every UBSan hit fatal.
      list(APPEND _avd_san_flags -fsanitize=undefined
           -fno-sanitize-recover=undefined)
    elseif(_san STREQUAL "thread")
      list(APPEND _avd_san_flags -fsanitize=thread)
      set(_avd_has_thread TRUE)
    elseif(_san STREQUAL "leak")
      list(APPEND _avd_san_flags -fsanitize=leak)
    else()
      message(FATAL_ERROR
              "AVD_SANITIZE: unknown sanitizer '${_san}' "
              "(expected address, undefined, thread, or leak)")
    endif()
  endforeach()

  if(_avd_has_address AND _avd_has_thread)
    message(FATAL_ERROR
            "AVD_SANITIZE: address and thread sanitizers are mutually "
            "exclusive; build them as separate trees")
  endif()

  list(REMOVE_DUPLICATES _avd_san_flags)
  # Frame pointers keep sanitizer stack traces usable in optimized builds.
  add_compile_options(${_avd_san_flags} -fno-omit-frame-pointer -g)
  add_link_options(${_avd_san_flags})
  # Every sanitizer build also runs the runtime lock-order checker
  # (src/common/lockdep.h): lockdep::Mutex instruments lock/unlock and
  # aborts on an order inversion before the deadlock can hang the build.
  add_compile_definitions(AVD_LOCKDEP=1)
  message(STATUS "AVD: sanitizers enabled: ${AVD_SANITIZE} (+lockdep)")
endif()

if(AVD_WERROR)
  add_compile_options(-Werror)
endif()
