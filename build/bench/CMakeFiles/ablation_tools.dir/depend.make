# Empty dependencies file for ablation_tools.
# This may be replaced when dependencies are built.
