# Empty dependencies file for big_mac_attack.
# This may be replaced when dependencies are built.
