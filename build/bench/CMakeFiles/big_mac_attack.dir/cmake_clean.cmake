file(REMOVE_RECURSE
  "CMakeFiles/big_mac_attack.dir/big_mac_attack.cpp.o"
  "CMakeFiles/big_mac_attack.dir/big_mac_attack.cpp.o.d"
  "big_mac_attack"
  "big_mac_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/big_mac_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
