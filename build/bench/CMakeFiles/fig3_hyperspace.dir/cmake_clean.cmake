file(REMOVE_RECURSE
  "CMakeFiles/fig3_hyperspace.dir/fig3_hyperspace.cpp.o"
  "CMakeFiles/fig3_hyperspace.dir/fig3_hyperspace.cpp.o.d"
  "fig3_hyperspace"
  "fig3_hyperspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_hyperspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
