# Empty dependencies file for fig3_hyperspace.
# This may be replaced when dependencies are built.
