# Empty compiler generated dependencies file for quorum_api.
# This may be replaced when dependencies are built.
