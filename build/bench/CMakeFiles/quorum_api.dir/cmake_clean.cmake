file(REMOVE_RECURSE
  "CMakeFiles/quorum_api.dir/quorum_api.cpp.o"
  "CMakeFiles/quorum_api.dir/quorum_api.cpp.o.d"
  "quorum_api"
  "quorum_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
