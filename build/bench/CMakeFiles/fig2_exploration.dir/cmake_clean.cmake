file(REMOVE_RECURSE
  "CMakeFiles/fig2_exploration.dir/fig2_exploration.cpp.o"
  "CMakeFiles/fig2_exploration.dir/fig2_exploration.cpp.o.d"
  "fig2_exploration"
  "fig2_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
