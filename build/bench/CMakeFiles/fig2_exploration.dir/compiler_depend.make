# Empty compiler generated dependencies file for fig2_exploration.
# This may be replaced when dependencies are built.
