# Empty compiler generated dependencies file for scale_attack.
# This may be replaced when dependencies are built.
