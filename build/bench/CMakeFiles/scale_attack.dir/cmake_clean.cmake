file(REMOVE_RECURSE
  "CMakeFiles/scale_attack.dir/scale_attack.cpp.o"
  "CMakeFiles/scale_attack.dir/scale_attack.cpp.o.d"
  "scale_attack"
  "scale_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
