# Empty compiler generated dependencies file for slow_primary.
# This may be replaced when dependencies are built.
