file(REMOVE_RECURSE
  "CMakeFiles/slow_primary.dir/slow_primary.cpp.o"
  "CMakeFiles/slow_primary.dir/slow_primary.cpp.o.d"
  "slow_primary"
  "slow_primary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slow_primary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
