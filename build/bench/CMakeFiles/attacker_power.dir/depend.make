# Empty dependencies file for attacker_power.
# This may be replaced when dependencies are built.
