file(REMOVE_RECURSE
  "CMakeFiles/attacker_power.dir/attacker_power.cpp.o"
  "CMakeFiles/attacker_power.dir/attacker_power.cpp.o.d"
  "attacker_power"
  "attacker_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attacker_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
