# Empty compiler generated dependencies file for api_assessment.
# This may be replaced when dependencies are built.
