file(REMOVE_RECURSE
  "CMakeFiles/api_assessment.dir/api_assessment.cpp.o"
  "CMakeFiles/api_assessment.dir/api_assessment.cpp.o.d"
  "api_assessment"
  "api_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
