# Empty dependencies file for big_mac_demo.
# This may be replaced when dependencies are built.
