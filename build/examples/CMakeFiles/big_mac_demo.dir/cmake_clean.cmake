file(REMOVE_RECURSE
  "CMakeFiles/big_mac_demo.dir/big_mac_demo.cpp.o"
  "CMakeFiles/big_mac_demo.dir/big_mac_demo.cpp.o.d"
  "big_mac_demo"
  "big_mac_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/big_mac_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
