file(REMOVE_RECURSE
  "CMakeFiles/custom_tool_plugin.dir/custom_tool_plugin.cpp.o"
  "CMakeFiles/custom_tool_plugin.dir/custom_tool_plugin.cpp.o.d"
  "custom_tool_plugin"
  "custom_tool_plugin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_tool_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
