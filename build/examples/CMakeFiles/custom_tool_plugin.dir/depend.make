# Empty dependencies file for custom_tool_plugin.
# This may be replaced when dependencies are built.
