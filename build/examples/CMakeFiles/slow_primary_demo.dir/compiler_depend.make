# Empty compiler generated dependencies file for slow_primary_demo.
# This may be replaced when dependencies are built.
