file(REMOVE_RECURSE
  "CMakeFiles/slow_primary_demo.dir/slow_primary_demo.cpp.o"
  "CMakeFiles/slow_primary_demo.dir/slow_primary_demo.cpp.o.d"
  "slow_primary_demo"
  "slow_primary_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slow_primary_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
