# Empty dependencies file for kv_store_demo.
# This may be replaced when dependencies are built.
