# Empty compiler generated dependencies file for avd_cli.
# This may be replaced when dependencies are built.
