file(REMOVE_RECURSE
  "CMakeFiles/avd_cli.dir/avd_cli.cpp.o"
  "CMakeFiles/avd_cli.dir/avd_cli.cpp.o.d"
  "avd_cli"
  "avd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
