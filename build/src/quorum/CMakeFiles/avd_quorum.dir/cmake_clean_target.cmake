file(REMOVE_RECURSE
  "libavd_quorum.a"
)
