file(REMOVE_RECURSE
  "CMakeFiles/avd_quorum.dir/client.cpp.o"
  "CMakeFiles/avd_quorum.dir/client.cpp.o.d"
  "CMakeFiles/avd_quorum.dir/deployment.cpp.o"
  "CMakeFiles/avd_quorum.dir/deployment.cpp.o.d"
  "CMakeFiles/avd_quorum.dir/replica.cpp.o"
  "CMakeFiles/avd_quorum.dir/replica.cpp.o.d"
  "libavd_quorum.a"
  "libavd_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
