
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quorum/client.cpp" "src/quorum/CMakeFiles/avd_quorum.dir/client.cpp.o" "gcc" "src/quorum/CMakeFiles/avd_quorum.dir/client.cpp.o.d"
  "/root/repo/src/quorum/deployment.cpp" "src/quorum/CMakeFiles/avd_quorum.dir/deployment.cpp.o" "gcc" "src/quorum/CMakeFiles/avd_quorum.dir/deployment.cpp.o.d"
  "/root/repo/src/quorum/replica.cpp" "src/quorum/CMakeFiles/avd_quorum.dir/replica.cpp.o" "gcc" "src/quorum/CMakeFiles/avd_quorum.dir/replica.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/avd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/avd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
