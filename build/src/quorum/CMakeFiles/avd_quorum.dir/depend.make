# Empty dependencies file for avd_quorum.
# This may be replaced when dependencies are built.
