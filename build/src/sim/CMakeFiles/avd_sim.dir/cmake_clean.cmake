file(REMOVE_RECURSE
  "CMakeFiles/avd_sim.dir/network.cpp.o"
  "CMakeFiles/avd_sim.dir/network.cpp.o.d"
  "CMakeFiles/avd_sim.dir/node.cpp.o"
  "CMakeFiles/avd_sim.dir/node.cpp.o.d"
  "CMakeFiles/avd_sim.dir/simulator.cpp.o"
  "CMakeFiles/avd_sim.dir/simulator.cpp.o.d"
  "libavd_sim.a"
  "libavd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
