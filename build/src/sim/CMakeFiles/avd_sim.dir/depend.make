# Empty dependencies file for avd_sim.
# This may be replaced when dependencies are built.
