file(REMOVE_RECURSE
  "libavd_sim.a"
)
