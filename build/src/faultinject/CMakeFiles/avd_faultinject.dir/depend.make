# Empty dependencies file for avd_faultinject.
# This may be replaced when dependencies are built.
