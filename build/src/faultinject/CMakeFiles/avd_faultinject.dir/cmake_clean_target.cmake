file(REMOVE_RECURSE
  "libavd_faultinject.a"
)
