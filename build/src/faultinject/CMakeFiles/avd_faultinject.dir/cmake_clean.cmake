file(REMOVE_RECURSE
  "CMakeFiles/avd_faultinject.dir/behaviors.cpp.o"
  "CMakeFiles/avd_faultinject.dir/behaviors.cpp.o.d"
  "CMakeFiles/avd_faultinject.dir/lfi.cpp.o"
  "CMakeFiles/avd_faultinject.dir/lfi.cpp.o.d"
  "CMakeFiles/avd_faultinject.dir/mac_corruptor.cpp.o"
  "CMakeFiles/avd_faultinject.dir/mac_corruptor.cpp.o.d"
  "CMakeFiles/avd_faultinject.dir/network_faults.cpp.o"
  "CMakeFiles/avd_faultinject.dir/network_faults.cpp.o.d"
  "CMakeFiles/avd_faultinject.dir/reorder.cpp.o"
  "CMakeFiles/avd_faultinject.dir/reorder.cpp.o.d"
  "CMakeFiles/avd_faultinject.dir/tamper.cpp.o"
  "CMakeFiles/avd_faultinject.dir/tamper.cpp.o.d"
  "CMakeFiles/avd_faultinject.dir/wire_fuzz.cpp.o"
  "CMakeFiles/avd_faultinject.dir/wire_fuzz.cpp.o.d"
  "libavd_faultinject.a"
  "libavd_faultinject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_faultinject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
