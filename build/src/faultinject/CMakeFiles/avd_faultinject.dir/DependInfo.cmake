
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultinject/behaviors.cpp" "src/faultinject/CMakeFiles/avd_faultinject.dir/behaviors.cpp.o" "gcc" "src/faultinject/CMakeFiles/avd_faultinject.dir/behaviors.cpp.o.d"
  "/root/repo/src/faultinject/lfi.cpp" "src/faultinject/CMakeFiles/avd_faultinject.dir/lfi.cpp.o" "gcc" "src/faultinject/CMakeFiles/avd_faultinject.dir/lfi.cpp.o.d"
  "/root/repo/src/faultinject/mac_corruptor.cpp" "src/faultinject/CMakeFiles/avd_faultinject.dir/mac_corruptor.cpp.o" "gcc" "src/faultinject/CMakeFiles/avd_faultinject.dir/mac_corruptor.cpp.o.d"
  "/root/repo/src/faultinject/network_faults.cpp" "src/faultinject/CMakeFiles/avd_faultinject.dir/network_faults.cpp.o" "gcc" "src/faultinject/CMakeFiles/avd_faultinject.dir/network_faults.cpp.o.d"
  "/root/repo/src/faultinject/reorder.cpp" "src/faultinject/CMakeFiles/avd_faultinject.dir/reorder.cpp.o" "gcc" "src/faultinject/CMakeFiles/avd_faultinject.dir/reorder.cpp.o.d"
  "/root/repo/src/faultinject/tamper.cpp" "src/faultinject/CMakeFiles/avd_faultinject.dir/tamper.cpp.o" "gcc" "src/faultinject/CMakeFiles/avd_faultinject.dir/tamper.cpp.o.d"
  "/root/repo/src/faultinject/wire_fuzz.cpp" "src/faultinject/CMakeFiles/avd_faultinject.dir/wire_fuzz.cpp.o" "gcc" "src/faultinject/CMakeFiles/avd_faultinject.dir/wire_fuzz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/avd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/avd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/avd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pbft/CMakeFiles/avd_pbft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
