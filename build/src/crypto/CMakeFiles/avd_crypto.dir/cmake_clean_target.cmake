file(REMOVE_RECURSE
  "libavd_crypto.a"
)
