file(REMOVE_RECURSE
  "CMakeFiles/avd_crypto.dir/authenticator.cpp.o"
  "CMakeFiles/avd_crypto.dir/authenticator.cpp.o.d"
  "CMakeFiles/avd_crypto.dir/keychain.cpp.o"
  "CMakeFiles/avd_crypto.dir/keychain.cpp.o.d"
  "CMakeFiles/avd_crypto.dir/mac.cpp.o"
  "CMakeFiles/avd_crypto.dir/mac.cpp.o.d"
  "libavd_crypto.a"
  "libavd_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
