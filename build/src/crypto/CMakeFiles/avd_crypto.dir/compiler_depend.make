# Empty compiler generated dependencies file for avd_crypto.
# This may be replaced when dependencies are built.
