
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/authenticator.cpp" "src/crypto/CMakeFiles/avd_crypto.dir/authenticator.cpp.o" "gcc" "src/crypto/CMakeFiles/avd_crypto.dir/authenticator.cpp.o.d"
  "/root/repo/src/crypto/keychain.cpp" "src/crypto/CMakeFiles/avd_crypto.dir/keychain.cpp.o" "gcc" "src/crypto/CMakeFiles/avd_crypto.dir/keychain.cpp.o.d"
  "/root/repo/src/crypto/mac.cpp" "src/crypto/CMakeFiles/avd_crypto.dir/mac.cpp.o" "gcc" "src/crypto/CMakeFiles/avd_crypto.dir/mac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/avd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
