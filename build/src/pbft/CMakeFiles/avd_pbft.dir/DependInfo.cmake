
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pbft/client.cpp" "src/pbft/CMakeFiles/avd_pbft.dir/client.cpp.o" "gcc" "src/pbft/CMakeFiles/avd_pbft.dir/client.cpp.o.d"
  "/root/repo/src/pbft/deployment.cpp" "src/pbft/CMakeFiles/avd_pbft.dir/deployment.cpp.o" "gcc" "src/pbft/CMakeFiles/avd_pbft.dir/deployment.cpp.o.d"
  "/root/repo/src/pbft/log.cpp" "src/pbft/CMakeFiles/avd_pbft.dir/log.cpp.o" "gcc" "src/pbft/CMakeFiles/avd_pbft.dir/log.cpp.o.d"
  "/root/repo/src/pbft/message.cpp" "src/pbft/CMakeFiles/avd_pbft.dir/message.cpp.o" "gcc" "src/pbft/CMakeFiles/avd_pbft.dir/message.cpp.o.d"
  "/root/repo/src/pbft/replica.cpp" "src/pbft/CMakeFiles/avd_pbft.dir/replica.cpp.o" "gcc" "src/pbft/CMakeFiles/avd_pbft.dir/replica.cpp.o.d"
  "/root/repo/src/pbft/service.cpp" "src/pbft/CMakeFiles/avd_pbft.dir/service.cpp.o" "gcc" "src/pbft/CMakeFiles/avd_pbft.dir/service.cpp.o.d"
  "/root/repo/src/pbft/wire.cpp" "src/pbft/CMakeFiles/avd_pbft.dir/wire.cpp.o" "gcc" "src/pbft/CMakeFiles/avd_pbft.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/avd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/avd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/avd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
