file(REMOVE_RECURSE
  "libavd_pbft.a"
)
