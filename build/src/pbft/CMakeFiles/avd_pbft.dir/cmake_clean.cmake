file(REMOVE_RECURSE
  "CMakeFiles/avd_pbft.dir/client.cpp.o"
  "CMakeFiles/avd_pbft.dir/client.cpp.o.d"
  "CMakeFiles/avd_pbft.dir/deployment.cpp.o"
  "CMakeFiles/avd_pbft.dir/deployment.cpp.o.d"
  "CMakeFiles/avd_pbft.dir/log.cpp.o"
  "CMakeFiles/avd_pbft.dir/log.cpp.o.d"
  "CMakeFiles/avd_pbft.dir/message.cpp.o"
  "CMakeFiles/avd_pbft.dir/message.cpp.o.d"
  "CMakeFiles/avd_pbft.dir/replica.cpp.o"
  "CMakeFiles/avd_pbft.dir/replica.cpp.o.d"
  "CMakeFiles/avd_pbft.dir/service.cpp.o"
  "CMakeFiles/avd_pbft.dir/service.cpp.o.d"
  "CMakeFiles/avd_pbft.dir/wire.cpp.o"
  "CMakeFiles/avd_pbft.dir/wire.cpp.o.d"
  "libavd_pbft.a"
  "libavd_pbft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_pbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
