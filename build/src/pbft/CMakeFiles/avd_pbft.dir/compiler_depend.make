# Empty compiler generated dependencies file for avd_pbft.
# This may be replaced when dependencies are built.
