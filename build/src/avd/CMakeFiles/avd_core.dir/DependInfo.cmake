
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/avd/attacker_power.cpp" "src/avd/CMakeFiles/avd_core.dir/attacker_power.cpp.o" "gcc" "src/avd/CMakeFiles/avd_core.dir/attacker_power.cpp.o.d"
  "/root/repo/src/avd/controller.cpp" "src/avd/CMakeFiles/avd_core.dir/controller.cpp.o" "gcc" "src/avd/CMakeFiles/avd_core.dir/controller.cpp.o.d"
  "/root/repo/src/avd/explorers.cpp" "src/avd/CMakeFiles/avd_core.dir/explorers.cpp.o" "gcc" "src/avd/CMakeFiles/avd_core.dir/explorers.cpp.o.d"
  "/root/repo/src/avd/genetic.cpp" "src/avd/CMakeFiles/avd_core.dir/genetic.cpp.o" "gcc" "src/avd/CMakeFiles/avd_core.dir/genetic.cpp.o.d"
  "/root/repo/src/avd/hyperspace.cpp" "src/avd/CMakeFiles/avd_core.dir/hyperspace.cpp.o" "gcc" "src/avd/CMakeFiles/avd_core.dir/hyperspace.cpp.o.d"
  "/root/repo/src/avd/pbft_executor.cpp" "src/avd/CMakeFiles/avd_core.dir/pbft_executor.cpp.o" "gcc" "src/avd/CMakeFiles/avd_core.dir/pbft_executor.cpp.o.d"
  "/root/repo/src/avd/plugin.cpp" "src/avd/CMakeFiles/avd_core.dir/plugin.cpp.o" "gcc" "src/avd/CMakeFiles/avd_core.dir/plugin.cpp.o.d"
  "/root/repo/src/avd/quorum_executor.cpp" "src/avd/CMakeFiles/avd_core.dir/quorum_executor.cpp.o" "gcc" "src/avd/CMakeFiles/avd_core.dir/quorum_executor.cpp.o.d"
  "/root/repo/src/avd/report.cpp" "src/avd/CMakeFiles/avd_core.dir/report.cpp.o" "gcc" "src/avd/CMakeFiles/avd_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/avd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/avd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/avd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pbft/CMakeFiles/avd_pbft.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/avd_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/faultinject/CMakeFiles/avd_faultinject.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
