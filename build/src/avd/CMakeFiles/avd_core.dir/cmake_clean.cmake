file(REMOVE_RECURSE
  "CMakeFiles/avd_core.dir/attacker_power.cpp.o"
  "CMakeFiles/avd_core.dir/attacker_power.cpp.o.d"
  "CMakeFiles/avd_core.dir/controller.cpp.o"
  "CMakeFiles/avd_core.dir/controller.cpp.o.d"
  "CMakeFiles/avd_core.dir/explorers.cpp.o"
  "CMakeFiles/avd_core.dir/explorers.cpp.o.d"
  "CMakeFiles/avd_core.dir/genetic.cpp.o"
  "CMakeFiles/avd_core.dir/genetic.cpp.o.d"
  "CMakeFiles/avd_core.dir/hyperspace.cpp.o"
  "CMakeFiles/avd_core.dir/hyperspace.cpp.o.d"
  "CMakeFiles/avd_core.dir/pbft_executor.cpp.o"
  "CMakeFiles/avd_core.dir/pbft_executor.cpp.o.d"
  "CMakeFiles/avd_core.dir/plugin.cpp.o"
  "CMakeFiles/avd_core.dir/plugin.cpp.o.d"
  "CMakeFiles/avd_core.dir/quorum_executor.cpp.o"
  "CMakeFiles/avd_core.dir/quorum_executor.cpp.o.d"
  "CMakeFiles/avd_core.dir/report.cpp.o"
  "CMakeFiles/avd_core.dir/report.cpp.o.d"
  "libavd_core.a"
  "libavd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
