# Empty dependencies file for avd_common.
# This may be replaced when dependencies are built.
