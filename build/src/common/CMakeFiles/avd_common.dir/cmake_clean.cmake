file(REMOVE_RECURSE
  "CMakeFiles/avd_common.dir/bytes.cpp.o"
  "CMakeFiles/avd_common.dir/bytes.cpp.o.d"
  "CMakeFiles/avd_common.dir/gray_code.cpp.o"
  "CMakeFiles/avd_common.dir/gray_code.cpp.o.d"
  "CMakeFiles/avd_common.dir/hash.cpp.o"
  "CMakeFiles/avd_common.dir/hash.cpp.o.d"
  "CMakeFiles/avd_common.dir/levenshtein.cpp.o"
  "CMakeFiles/avd_common.dir/levenshtein.cpp.o.d"
  "CMakeFiles/avd_common.dir/logging.cpp.o"
  "CMakeFiles/avd_common.dir/logging.cpp.o.d"
  "CMakeFiles/avd_common.dir/rng.cpp.o"
  "CMakeFiles/avd_common.dir/rng.cpp.o.d"
  "CMakeFiles/avd_common.dir/stats.cpp.o"
  "CMakeFiles/avd_common.dir/stats.cpp.o.d"
  "CMakeFiles/avd_common.dir/thread_pool.cpp.o"
  "CMakeFiles/avd_common.dir/thread_pool.cpp.o.d"
  "libavd_common.a"
  "libavd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
