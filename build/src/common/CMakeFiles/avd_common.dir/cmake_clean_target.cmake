file(REMOVE_RECURSE
  "libavd_common.a"
)
