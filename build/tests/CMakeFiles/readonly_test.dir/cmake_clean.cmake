file(REMOVE_RECURSE
  "CMakeFiles/readonly_test.dir/readonly_test.cpp.o"
  "CMakeFiles/readonly_test.dir/readonly_test.cpp.o.d"
  "readonly_test"
  "readonly_test.pdb"
  "readonly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readonly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
