# Empty dependencies file for checkpoint_conformance_test.
# This may be replaced when dependencies are built.
