file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_conformance_test.dir/checkpoint_conformance_test.cpp.o"
  "CMakeFiles/checkpoint_conformance_test.dir/checkpoint_conformance_test.cpp.o.d"
  "checkpoint_conformance_test"
  "checkpoint_conformance_test.pdb"
  "checkpoint_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
