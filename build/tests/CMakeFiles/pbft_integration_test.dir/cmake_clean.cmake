file(REMOVE_RECURSE
  "CMakeFiles/pbft_integration_test.dir/pbft_integration_test.cpp.o"
  "CMakeFiles/pbft_integration_test.dir/pbft_integration_test.cpp.o.d"
  "pbft_integration_test"
  "pbft_integration_test.pdb"
  "pbft_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbft_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
