# Empty compiler generated dependencies file for pbft_integration_test.
# This may be replaced when dependencies are built.
