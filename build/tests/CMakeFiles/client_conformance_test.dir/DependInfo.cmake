
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/client_conformance_test.cpp" "tests/CMakeFiles/client_conformance_test.dir/client_conformance_test.cpp.o" "gcc" "tests/CMakeFiles/client_conformance_test.dir/client_conformance_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/avd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/avd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/avd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pbft/CMakeFiles/avd_pbft.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/avd_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/faultinject/CMakeFiles/avd_faultinject.dir/DependInfo.cmake"
  "/root/repo/build/src/avd/CMakeFiles/avd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
