file(REMOVE_RECURSE
  "CMakeFiles/client_conformance_test.dir/client_conformance_test.cpp.o"
  "CMakeFiles/client_conformance_test.dir/client_conformance_test.cpp.o.d"
  "client_conformance_test"
  "client_conformance_test.pdb"
  "client_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
