# Empty dependencies file for client_conformance_test.
# This may be replaced when dependencies are built.
