# Empty dependencies file for pbft_unit_test.
# This may be replaced when dependencies are built.
