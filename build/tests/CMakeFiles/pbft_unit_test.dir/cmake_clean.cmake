file(REMOVE_RECURSE
  "CMakeFiles/pbft_unit_test.dir/pbft_unit_test.cpp.o"
  "CMakeFiles/pbft_unit_test.dir/pbft_unit_test.cpp.o.d"
  "pbft_unit_test"
  "pbft_unit_test.pdb"
  "pbft_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbft_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
