file(REMOVE_RECURSE
  "CMakeFiles/replica_conformance_test.dir/replica_conformance_test.cpp.o"
  "CMakeFiles/replica_conformance_test.dir/replica_conformance_test.cpp.o.d"
  "replica_conformance_test"
  "replica_conformance_test.pdb"
  "replica_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
