# Empty dependencies file for replica_conformance_test.
# This may be replaced when dependencies are built.
