file(REMOVE_RECURSE
  "CMakeFiles/hyperspace_test.dir/hyperspace_test.cpp.o"
  "CMakeFiles/hyperspace_test.dir/hyperspace_test.cpp.o.d"
  "hyperspace_test"
  "hyperspace_test.pdb"
  "hyperspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
