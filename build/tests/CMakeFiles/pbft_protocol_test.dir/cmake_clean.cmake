file(REMOVE_RECURSE
  "CMakeFiles/pbft_protocol_test.dir/pbft_protocol_test.cpp.o"
  "CMakeFiles/pbft_protocol_test.dir/pbft_protocol_test.cpp.o.d"
  "pbft_protocol_test"
  "pbft_protocol_test.pdb"
  "pbft_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbft_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
