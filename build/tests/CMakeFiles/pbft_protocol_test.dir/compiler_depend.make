# Empty compiler generated dependencies file for pbft_protocol_test.
# This may be replaced when dependencies are built.
