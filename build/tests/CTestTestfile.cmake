# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pbft_integration_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pbft_unit_test[1]_include.cmake")
include("/root/repo/build/tests/pbft_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/faultinject_test[1]_include.cmake")
include("/root/repo/build/tests/hyperspace_test[1]_include.cmake")
include("/root/repo/build/tests/defense_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_test[1]_include.cmake")
include("/root/repo/build/tests/replica_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/genetic_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/quorum_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/client_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/readonly_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_conformance_test[1]_include.cmake")
